"""The W5 provider: the meta-application itself.

One :class:`Provider` is "a single logical machine on which
applications and data are segregated" (§1).  It assembles every
substrate — kernel, labeled filesystem and database, sessions, the
perimeter gateway, the declassification service, the app/module
registries — and implements the §2 request pipeline:

    authenticate (cookies) → identify the application → launch it with
    the privileges users granted → run developer code confined → check
    the result at the perimeter → respond.

Everything users "configure via front-ends like Web forms" is a method
here (``signup``, ``enable_app``, ``grant_declassifier``,
``prefer_module``, …), and the interesting ones are also routed as
HTTP endpoints so the examples can drive the whole system through
:class:`~repro.net.ExternalClient` alone.
"""

from __future__ import annotations

from typing import Any, Optional

from ..db import DbView, LabeledStore
from ..declassify import BUILTINS, Declassifier, DeclassificationService
from ..fs import FsView, LabeledFileSystem
from ..kernel import Kernel, Process, ResourceHook
from ..kernel import audit as A
from ..labels import CapabilitySet, Label, LabelError, plus
from ..net import (Gateway, HttpRequest, HttpResponse, SESSION_COOKIE,
                   SessionManager, AuthError, error, ok)
from ..net.email import EmailGateway
from ..obs import FlightRecorder, NULL_TRACER, Tracer
from .accounts import UserAccount
from .config import ProviderConfig, _UNSET, resolve_config
from .context import AppContext
from .debug import DebugService
from .endorsement import EndorsementService
from .errors import (AppCrashed, NoSuchApp, NoSuchUser, NotAuthorized,
                     PlatformError)
from .plans import PlanCache, RequestPlan
from .registry import APP, AppModule, Registry


_USERNAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")


def _validate_username(username: str) -> None:
    """Reject names that would break paths, addresses, or sanity."""
    if not isinstance(username, str) or not username:
        raise PlatformError("username must be a non-empty string")
    if len(username) > 64:
        raise PlatformError("username too long (max 64)")
    if not set(username) <= _USERNAME_OK:
        raise PlatformError(
            "username may contain only letters, digits, '-', '_', '.'")
    if username.startswith(".") or username in ("..", "provider"):
        raise PlatformError(f"username {username!r} is reserved")


class Provider:
    """A W5 provider instance (one security domain, one tag namespace)."""

    def __init__(self, name: str = "w5",
                 resources: Optional[ResourceHook] = None,
                 js_policy: str = "block",
                 rate_limit: Optional[int] = None,
                 fast_request_plane: Any = _UNSET,
                 recycle_processes: Any = _UNSET,
                 partitioned_store: Any = _UNSET,
                 audit_max_events: Optional[int] = None,
                 incremental_persistence: Any = _UNSET,
                 journal_compact_bytes: Any = _UNSET,
                 tracing: bool = False,
                 config: Optional[ProviderConfig] = None,
                 request_plans: Any = _UNSET,
                 session_seed: Optional[int] = None) -> None:
        self.name = name
        #: The resolved :class:`ProviderConfig`.  The individual flag
        #: keywords are deprecated aliases that emit
        #: :class:`~repro.platform.config.W5DeprecationWarning` and
        #: override the matching config field.
        config = resolve_config(config, dict(
            fast_request_plane=fast_request_plane,
            recycle_processes=recycle_processes,
            partitioned_store=partitioned_store,
            incremental_persistence=incremental_persistence,
            journal_compact_bytes=journal_compact_bytes,
            request_plans=request_plans), owner="Provider")
        self.config = config
        fast_request_plane = config.fast_request_plane
        recycle_processes = config.recycle_processes
        partitioned_store = config.partitioned_store
        incremental_persistence = config.incremental_persistence
        journal_compact_bytes = config.journal_compact_bytes
        #: ``tracing`` switches end-to-end request tracing (repro.obs):
        #: every handle_request builds a span tree through gateway,
        #: kernel, app, db/fs, declassifier and egress; per-span-name
        #: latency histograms accumulate; and the flight recorder keeps
        #: the slowest and every errored trace.  Off (the default), the
        #: shared NULL_TRACER makes all instrumentation sites no-ops.
        self.tracing = tracing
        if tracing:
            self.tracer: Any = Tracer()
            self.recorder: Optional[FlightRecorder] = FlightRecorder()
            self.tracer.sink = self.recorder.offer
        else:
            self.tracer = NULL_TRACER
            self.recorder = None
        #: ``incremental_persistence`` switches the durability journal:
        #: every durable mutation is appended to a checksummed log and
        #: ``snapshot_provider(..., incremental=True)`` emits O(dirty)
        #: deltas against the last full checkpoint, compacting when the
        #: journal outgrows ``journal_compact_bytes``.  Off, snapshots
        #: are always the naive full re-serialization (the M10
        #: benchmark baseline), and crash recovery can only roll back
        #: to the last full snapshot.
        self.incremental_persistence = incremental_persistence
        self.journal_compact_bytes = journal_compact_bytes
        #: ``fast_request_plane`` switches the O(1) request plane: the
        #: per-(app, viewer) launch-capability index and the memoized
        #: export-authority oracle.  Off, every request recomputes both
        #: from scratch (the M8 benchmark compares the two).
        self.fast_request_plane = fast_request_plane
        #: ``partitioned_store`` switches the label-partitioned data
        #: plane: db queries resolve visibility once per distinct
        #: ``(slabel, ilabel)`` partition and ``fs.walk`` prunes
        #: unreadable subtrees with one verdict per child label pair.
        #: Off, both fall back to the naive per-row / per-node engines
        #: (the M9 benchmark baseline and differential-test oracle).
        self.partitioned_store = partitioned_store
        self.kernel = Kernel(namespace=name, resources=resources,
                             recycle=recycle_processes,
                             audit_max_events=audit_max_events,
                             lazy_audit=config.lazy_audit,
                             compiled_transitions=config.compiled_transitions)
        self.kernel.tracer = self.tracer
        if tracing:
            # every audit event recorded inside a traced request
            # carries the active trace/span id in its extra dict (the
            # log reads tracer.current directly — no callback)
            self.kernel.audit.trace_source = self.tracer
        self.fs = LabeledFileSystem(self.kernel,
                                    grouped_walk=partitioned_store)
        self.db = LabeledStore(self.kernel, partitioned=partitioned_store,
                               batch_charges=config.batched_charges,
                               verdict_slots=config.verdict_slots)
        # shard k of a ShardedProvider seeds its session RNG with
        # seed+k so two shards never mint the same token (the router
        # maps token -> shard); shard 0 / unsharded keep the default
        # stream, preserving byte-identity with historical deployments
        self.sessions = (SessionManager() if session_seed is None
                         else SessionManager(seed=session_seed))
        self.declass = DeclassificationService(
            self.kernel, cache_authority=fast_request_plane)
        self.apps = Registry()
        self.modules = self.apps  # one namespace; kinds distinguish
        #: (app, module) dynamic usage edges for the §3.2 code search.
        self.usage_edges: list[tuple[str, str]] = []
        #: Adoption events (username, app) in order, for experiment C7.
        self.adoptions: list[tuple[str, str]] = []

        self._accounts: dict[str, UserAccount] = {}
        #: O(dirty) snapshot bookkeeping since the last full checkpoint.
        self._dirty_accounts: set[str] = set()
        self._removed_accounts: set[str] = set()

        # The provider's own trusted agents.
        self._account_service: Process = self.kernel.spawn_trusted(
            "account-service")
        self._provider_write = self.kernel.create_tag(
            self._account_service, purpose="provider-write",
            kind="integrity", tag_owner=self.name)
        # Re-label the provider's service with its integrity tag so the
        # directories it creates are provider-write-protected.
        self.kernel.change_label(self._account_service,
                                 integrity=Label([self._provider_write]))
        svc_fs = FsView(self.fs, self._account_service)
        # Root starts unprotected; claim it for the provider.
        self.fs.root.ilabel = Label([self._provider_write])
        svc_fs.mkdir("/users")

        self.gateway = Gateway(self.kernel, self.sessions,
                               authority_for=self._authority_for,
                               js_policy=js_policy,
                               rate_limit=rate_limit)
        self.email = EmailGateway(self.kernel,
                                  authority_for=self._authority_for)
        self.endorsements = EndorsementService()
        self.debug = DebugService()
        from ..search import EditorBoard
        self.editors = EditorBoard()
        from .groups import GroupService
        self.groups = GroupService(self)
        from .capindex import LaunchCapIndex
        self.capindex = LaunchCapIndex(self, enabled=fast_request_plane)
        #: Compiled per-(app, viewer) request plans (M12).  The cache
        #: exists regardless of the switch — ``explain()`` can compile
        #: a plan for inspection either way — but dispatch consults it
        #: only when ``config.request_plans`` is on.
        self.plans = PlanCache(self, enabled=config.request_plans)
        #: The durability manager (journal + dirty tracking + replay).
        #: Created last so the provider's own bootstrap (tags, /users,
        #: /groups) lands in the initial base checkpoint, not the
        #: journal.
        self._durability = None
        if incremental_persistence:
            from .durability import DurabilityManager
            self._durability = DurabilityManager(
                self, compact_threshold=journal_compact_bytes)

    # ------------------------------------------------------------------
    # durability plumbing
    # ------------------------------------------------------------------

    def _record(self, op: str, data: dict[str, Any]) -> None:
        """Journal one platform-level durable mutation (no-op when
        ``incremental_persistence`` is off or replay is running)."""
        if self._durability is not None:
            self._durability.record(op, data)

    def _note_account(self, username: str) -> None:
        self._dirty_accounts.add(username)
        self._removed_accounts.discard(username)

    def mark_accounts_clean(self) -> None:
        self._dirty_accounts.clear()
        self._removed_accounts.clear()

    def snapshot_incremental(self) -> dict[str, Any]:
        """An O(dirty) delta snapshot (or a fresh full snapshot when
        compaction triggers); see
        :func:`repro.platform.persist.snapshot_provider`."""
        from .persist import snapshot_provider
        return snapshot_provider(self, incremental=True)

    def persistence_stats(self) -> dict[str, Any]:
        """Journal/compaction counters (empty when the journal is off)."""
        if self._durability is None:
            return {"incremental_persistence": False}
        return {"incremental_persistence": True,
                **self._durability.stats()}

    # ------------------------------------------------------------------
    # tracing (repro.obs)
    # ------------------------------------------------------------------

    def trace_report(self) -> dict[str, Any]:
        """Everything the tracer collected, in serializable form:
        tracer counters, per-span-name latency histograms, and the
        flight recorder's kept traces.  The input format of
        ``python -m repro.analysis trace``."""
        if not self.tracer.enabled or self.recorder is None:
            return {"tracing": False}
        return {"tracing": True,
                "stats": self.tracer.stats(),
                "latencies": self.tracer.latencies(),
                # bucket-level snapshots: what the sharded router's
                # stitched trace_report merges exactly (M16)
                "histograms": {
                    name: hist.snapshot() for name, hist
                    in sorted(self.tracer._histograms.items())},
                "recorder": self.recorder.dump()}

    def health_report(self) -> dict[str, Any]:
        """Readiness gauges from state the provider already keeps:
        journal byte lag, pool occupancy, plan-cache hit ratio, audit
        drops (M16; see :func:`repro.obs.fleet.provider_health`)."""
        from ..obs.fleet import provider_health
        return provider_health(self)

    # ------------------------------------------------------------------
    # accounts (provider web forms)
    # ------------------------------------------------------------------

    def signup(self, username: str, password: str) -> UserAccount:
        """Create an account: credentials, tags, home directory."""
        _validate_username(username)
        if username in self._accounts:
            raise PlatformError(f"user {username!r} already exists")
        self.sessions.register(username, password)
        data_tag = self.kernel.create_tag(
            self._account_service, purpose=f"{username}-data",
            tag_owner=username)
        write_tag = self.kernel.create_tag(
            self._account_service, purpose=f"{username}-write",
            kind="integrity", tag_owner=username)
        account = UserAccount(username=username, data_tag=data_tag,
                              write_tag=write_tag,
                              email_address=f"{username}@{self.name}")
        self._accounts[username] = account
        self.email.register_address(account.email_address, owner=username)
        self._note_account(username)
        self._record("account.signup", {
            "username": username, "data_tag_id": data_tag.tag_id,
            "write_tag_id": write_tag.tag_id,
            "email": account.email_address})
        svc_fs = FsView(self.fs, self._account_service)
        svc_fs.mkdir(account.home, slabel=Label([data_tag]),
                     ilabel=Label([write_tag]))
        self.kernel.audit.record(A.SPAWN, True, "provider",
                                 f"account created for {username}")
        return account

    def account(self, username: str) -> UserAccount:
        try:
            return self._accounts[username]
        except KeyError:
            raise NoSuchUser(username) from None

    def usernames(self) -> list[str]:
        return sorted(self._accounts)

    def set_profile(self, username: str, **fields: str) -> None:
        """Provider-form profile editing (typed once, §1)."""
        self.account(username).profile.update(fields)
        self._note_account(username)
        self._record("account.profile", {"username": username,
                                         "fields": dict(fields)})

    def delete_account(self, username: str) -> dict[str, int]:
        """The right to leave: erase a user's data and policies.

        Removes the home directory, every database row labeled exactly
        with the user's data tag, all declassifier grants, the account
        record, and group memberships (groups the user *owns* survive
        headless until the provider reassigns them — a real deployment
        would prompt; we keep them so other members' shared data is
        not destroyed by one member's departure).  The tags themselves
        are never reused — the registry retains them as tombstones, so
        any stray labeled bytes stay locked forever rather than
        falling to a future user.

        Returns counts of what was erased.
        """
        account = self.account(username)
        erased = {"files": 0, "rows": 0, "grants": 0}
        agent = self._user_agent(account)
        fs_view = FsView(self.fs, agent)
        try:
            # files: depth-first delete of the home subtree
            def wipe(path: str) -> None:
                for name in fs_view.listdir(path):
                    child = f"{path}/{name}"
                    if fs_view.stat(child)["is_dir"]:
                        wipe(child)
                        fs_view.delete(child)
                    else:
                        fs_view.delete(child)
                        erased["files"] += 1
            if fs_view.exists(account.home):
                wipe(account.home)
                # unlinking the home entry writes /users (provider-
                # protected): the account service does it, and it owns
                # the user's write tag (it minted it), so the node
                # check passes too
                svc_fs = FsView(self.fs, self._account_service)
                svc_fs.delete(account.home)
            # rows labeled exactly with the user's tag, purged through
            # the store's (journaled) cold-storage path
            for table_name in self.db.tables():
                table = self.db.table(table_name)
                doomed = [row.row_id for row in table.rows.values()
                          if row.slabel == Label([account.data_tag])]
                erased["rows"] += self.db.purge_rows(table_name, doomed)
        finally:
            self.kernel.exit(agent)
        erased["grants"] = self.declass.revoke(username, account.data_tag)
        for group_name in self.groups.groups_of(username):
            group = self.groups.get(group_name)
            if group.owner != username:
                self.groups.remove_member(group.owner, group_name,
                                          username)
        self.sessions.remove_user(username)
        del self._accounts[username]
        self._dirty_accounts.discard(username)
        self._removed_accounts.add(username)
        self._record("account.delete", {"username": username})
        # every app the user had enabled loses a read cap
        self.capindex.invalidate_all("account-delete")
        self.kernel.audit.record(A.EXIT, True, "provider",
                                 f"account deleted: {username}")
        return erased

    # ------------------------------------------------------------------
    # user policy (provider web forms)
    # ------------------------------------------------------------------

    def enable_app(self, username: str, app_name: str,
                   allow_write: bool = True) -> None:
        """The checkbox: let ``app_name`` read (and optionally write)
        this user's data.  This is the paper's entire signup flow for a
        new application (§1: "simply by checking a box")."""
        account = self.account(username)
        if app_name not in self.apps:
            raise NoSuchApp(app_name)
        account.enabled_apps.add(app_name)
        if allow_write:
            account.writable_apps.add(app_name)
        self.adoptions.append((username, app_name))
        self._note_account(username)
        self._record("account.enable", {"username": username,
                                        "app": app_name,
                                        "write": allow_write})
        self.capindex.invalidate_app(app_name)

    def disable_app(self, username: str, app_name: str) -> None:
        account = self.account(username)
        account.enabled_apps.discard(app_name)
        account.writable_apps.discard(app_name)
        self._note_account(username)
        self._record("account.disable", {"username": username,
                                         "app": app_name})
        self.capindex.invalidate_app(app_name)

    def prefer_module(self, username: str, slot: str, ref: str) -> None:
        """Record the user's choice of a competing module (§2)."""
        if ref not in self.apps:
            raise NoSuchApp(ref)
        self.account(username).module_preferences[slot] = ref
        self._note_account(username)
        self._record("account.prefer", {"username": username,
                                        "slot": slot, "ref": ref})

    def snapshot(self) -> dict[str, Any]:
        """:class:`~repro.core.snapshot.Snapshotable` — serialize the
        whole deployment (restore with
        :func:`repro.platform.restore_provider`)."""
        from .persist import snapshot_provider
        return snapshot_provider(self)

    def grant_declassifier(self, username: str, declassifier: Declassifier
                           ) -> None:
        """Entrust a declassifier with the user's data tag.

        The platform verifies ownership: users grant export privileges
        over *their own* tag only.
        """
        account = self.account(username)
        self.declass.grant(username, account.data_tag, declassifier)

    def grant_builtin_declassifier(self, username: str, name: str,
                                   config: Optional[dict[str, Any]] = None
                                   ) -> None:
        try:
            cls = BUILTINS[name]
        except KeyError:
            raise NoSuchApp(f"declassifier {name!r}") from None
        self.grant_declassifier(username, cls(config))

    def update_declassifier_config(self, username: str, name: str,
                                   **changes: Any) -> int:
        """Amend the policy config of the user's granted declassifier(s)
        named ``name`` (e.g. grow a friends-only list).

        Policy edits are user decisions, so they go through the
        platform — never by mutating ``grant.declassifier.config``
        directly.  Every updated grant is audited.  Returns the number
        of grants updated; raises
        :class:`~repro.platform.errors.NoSuchApp` if the user has no
        grant by that name.
        """
        account = self.account(username)
        updated = 0
        for grant in self.declass.grants_for(username):
            if grant.tag == account.data_tag \
                    and grant.declassifier.name == name:
                grant.declassifier.update_config(**changes)
                updated += 1
        if not updated:
            raise NoSuchApp(
                f"{username} has no {name!r} declassifier grant")
        self.declass.note_config_update(username, account.data_tag,
                                        name, changes)
        self.declass.invalidate_authority("config-update")
        self.kernel.audit.record(
            A.DECLASSIFY, True, username,
            f"updated {name!r} config ({', '.join(sorted(changes))})")
        return updated

    def revoke_declassifier(self, username: str,
                            name: Optional[str] = None) -> int:
        account = self.account(username)
        return self.declass.revoke(username, account.data_tag,
                                   declassifier_name=name)

    def set_integrity_policy(self, username: str,
                             require_endorsed: bool) -> None:
        """§3.1 integrity protection: launch apps for this user only
        when all components are endorsed."""
        self.account(username).require_endorsed = require_endorsed
        self._note_account(username)
        self._record("account.integrity",
                     {"username": username,
                      "require_endorsed": require_endorsed})

    def set_js_policy(self, username: str, policy: str) -> None:
        """Per-user JavaScript posture at the perimeter (§3.5)."""
        if policy not in ("", "block", "allow"):
            raise PlatformError(f"unknown js policy {policy!r}")
        self.account(username).js_policy = policy
        self._note_account(username)
        self._record("account.js", {"username": username,
                                    "policy": policy})

    def endorse_module(self, module_name: str,
                       endorser: str = "provider") -> None:
        """Mark a registered module as audited/meritorious."""
        if module_name not in self.apps:
            raise NoSuchApp(module_name)
        self.endorsements.endorse(module_name, endorser)

    def pin_audited(self, username: str, app_name: str,
                    version: str) -> None:
        """§3.2: the user audited this exact version; her requests will
        run it regardless of later uploads — "the code with which a
        user is interacting is exactly the code that the user has
        audited", guaranteed by the platform.

        Pinning requires the source to be open (one cannot audit what
        one cannot read) and the version to exist.
        """
        module = self.apps.get(f"{app_name}@{version}")
        if not module.source_open:
            raise NotAuthorized(
                f"{app_name} is closed-source; there is nothing to audit")
        self.account(username).audited_versions[app_name] = version
        self._note_account(username)
        self._record("account.pin", {"username": username,
                                     "app": app_name, "version": version})

    def unpin_audited(self, username: str, app_name: str) -> None:
        self.account(username).audited_versions.pop(app_name, None)
        self._note_account(username)
        self._record("account.unpin", {"username": username,
                                       "app": app_name})

    # ------------------------------------------------------------------
    # developer uploads
    # ------------------------------------------------------------------

    def register_app(self, module: AppModule) -> AppModule:
        return self.apps.register(module)

    def fork_app(self, original: str, new_developer: str, **kw: Any
                 ) -> AppModule:
        return self.apps.fork(original, new_developer, **kw)

    def record_usage(self, app_name: str, module_name: str) -> None:
        self.usage_edges.append((app_name, module_name))
        self._record("ledger.usage", {"app": app_name,
                                      "module": module_name})

    # ------------------------------------------------------------------
    # code search (§3.2)
    # ------------------------------------------------------------------

    def code_search(self, query: Optional[str] = None, k: int = 10
                    ) -> list[dict[str, Any]]:
        """Rank registered modules by the §3.2 trust blend: structural
        CodeRank over declared imports + observed usage, popularity,
        and editor endorsements weighted by adoption-derived
        reputation.  ``query`` filters by substring on name/description.
        """
        from collections import Counter
        from ..search import DependencyGraph, TrustScorer
        deps = DependencyGraph.from_registry(self.apps, self.usage_edges)
        usage_counts = Counter(module for __, module in self.usage_edges)
        adoption_counts = Counter(app for __, app in self.adoptions)
        scores = TrustScorer().score(deps, usage_counts,
                                     board=self.editors,
                                     adoption_counts=adoption_counts)
        results = []
        for module in self.apps:
            if query:
                haystack = f"{module.name} {module.description}".lower()
                if query.lower() not in haystack:
                    continue
            results.append({"name": module.name,
                            "developer": module.developer,
                            "kind": module.kind,
                            "description": module.description,
                            "score": scores.get(module.name, 0.0)})
        results.sort(key=lambda r: (-r["score"], r["name"]))
        return results[:k]

    # ------------------------------------------------------------------
    # data plane helpers (the provider acting for a logged-in user)
    # ------------------------------------------------------------------

    def store_user_data(self, username: str, path: str, data: Any) -> None:
        """Store data under the user's labels via the trusted account
        service (models a direct provider-form upload)."""
        account = self.account(username)
        agent = self._user_agent(account)
        FsView(self.fs, agent).create(f"{account.home}/{path}", data)
        self.kernel.exit(agent)

    def read_user_data(self, username: str, path: str) -> Any:
        account = self.account(username)
        agent = self._user_agent(account)
        data = FsView(self.fs, agent).read(f"{account.home}/{path}")
        self.kernel.exit(agent)
        return data

    def _user_agent(self, account: UserAccount) -> Process:
        """A short-lived trusted process with the user's full authority."""
        return self.kernel.spawn_trusted(
            f"agent:{account.username}",
            slabel=Label([account.data_tag]),
            ilabel=Label([account.write_tag]),
            caps=CapabilitySet.owning(account.data_tag, account.write_tag),
            owner_user=account.username)

    # ------------------------------------------------------------------
    # the provider's universal feed (value-level enforcement)
    # ------------------------------------------------------------------

    def render_universal_feed(self, viewer: Optional[str],
                              k: int = 20) -> HttpResponse:
        """A provider-owned route that shows *every* blog post the
        viewer is cleared for, one item at a time.

        This is the language-level granularity (A2) put to work at the
        platform layer: trusted provider code (same standing as the
        login service) assembles a :class:`~repro.lang.LabeledList`
        with per-author labels and exports exactly the authorized
        subset, instead of launching an app whose process label would
        make the response all-or-nothing.  Developer code is never
        involved, so no new trust is introduced.
        """
        from ..lang import LabeledList, lift
        feed = LabeledList()
        agent = self.kernel.spawn_trusted("feed-renderer")
        try:
            if "blog_posts" in self.db.tables():
                table = self.db.table("blog_posts")
                for row in table.rows.values():
                    feed.append(lift(
                        {"author": row.values.get("author"),
                         "title": row.values.get("title")},
                        row.slabel))
        finally:
            self.kernel.exit(agent)
        authority = self._authority_for(viewer)
        delivered, withheld = feed.export_for(authority)
        delivered.sort(key=lambda item: (str(item.get("author")),
                                         str(item.get("title"))))
        return ok({"feed": delivered[:k], "withheld": withheld})

    # ------------------------------------------------------------------
    # the export-authority oracle (gateway plug-in)
    # ------------------------------------------------------------------

    def _authority_for(self, viewer: Optional[str]) -> CapabilitySet:
        own_tags = []
        if viewer is not None and viewer in self._accounts:
            own_tags.append(self._accounts[viewer].data_tag)
        return self.declass.authority_for(viewer, own_tags=own_tags)

    # ------------------------------------------------------------------
    # application launch
    # ------------------------------------------------------------------

    def launch_caps(self, app: AppModule,
                    viewer: Optional[str] = None) -> CapabilitySet:
        """The capabilities an instance of ``app`` starts with.

        * **read** (``tag+``): for every user who enabled the app —
          commingling requires the union, and reads are harmless
          because export is checked downstream;
        * **write** (``wtag+``): only on behalf of the *driving*
          viewer — their own write tag if they granted the app write,
          and the write tags of groups where they are a writer.  A
          delegated write privilege thus acts only when its delegator
          (or a fellow group writer) is at the wheel; another user
          cannot steer your delegate into your data.

        Served from :class:`~repro.platform.capindex.LaunchCapIndex`,
        which memoizes the finished set per (app, viewer) and falls
        back to :meth:`_scan_launch_caps` on a miss.
        """
        return self.capindex.lookup(app, viewer)

    def _scan_launch_caps(self, app: AppModule,
                          viewer: Optional[str] = None) -> CapabilitySet:
        """The legacy full scan: every account, every group.  The
        index's miss path — kept as the single source of truth for
        what the capabilities *are*."""
        caps = []
        for account in self._accounts.values():
            if app.name in account.enabled_apps:
                caps.append(plus(account.data_tag))
        if viewer is not None and viewer in self._accounts:
            account = self._accounts[viewer]
            if app.name in account.writable_apps:
                caps.append(plus(account.write_tag))
        caps.extend(self.groups.launch_caps_for(app.name, viewer))
        return CapabilitySet(caps)

    def run_app(self, app_ref: str, request: HttpRequest,
                viewer: Optional[str]) -> HttpResponse:
        """Launch an app for one request and return its *internal*
        (still-labeled) response.  Crashes become a generic 500: "if
        the platform were to send core dumps to developers, it could
        wrongly expose users' data" (§3.5), so the traceback goes to
        the audit log, not the wire.
        """
        with self.kernel.tracer.detail("app.run", app=app_ref,
                                       viewer=viewer or "anonymous"):
            return self._run_app(app_ref, request, viewer)

    def _run_app(self, app_ref: str, request: HttpRequest,
                 viewer: Optional[str]) -> HttpResponse:
        app = self.apps.get(app_ref)
        if viewer is not None and viewer in self._accounts:
            account = self._accounts[viewer]
            pinned = account.audited_versions.get(app.name)
            if pinned is not None and "@" not in app_ref:
                # the user audited a specific version; run exactly it
                app = self.apps.get(f"{app.name}@{pinned}")
            if account.require_endorsed:
                ok_to_launch, missing = self.endorsements.check_app(
                    self.apps, app, account.module_preferences)
                if not ok_to_launch:
                    self.kernel.audit.record(
                        A.SPAWN, False, "provider",
                        f"integrity policy: {app.name} has unendorsed "
                        f"components {missing} (viewer {viewer})")
                    return error(403, "application not endorsed")
        process = self.kernel.pool.checkout(
            f"app:{app.name}", caps=self.launch_caps(app, viewer),
            owner_user=viewer)
        self.kernel.resources.charge(process, "requests", 1)
        ctx = AppContext(self, app,
                         sys=self.kernel.syscalls_for(process),
                         fs=FsView(self.fs, process),
                         db=DbView(self.db, process),
                         request=request, viewer=viewer)
        try:
            result = app.handler(ctx)
        except LabelError:
            # The reference monitor said no; the app died for it.
            self.kernel.audit.record(
                A.EXPORT, False, f"app:{app.name}",
                "killed by label violation")
            return error(403, "forbidden")
        except Exception as exc:
            # §3.5 Debugging: the developer gets a sanitized report;
            # the audit log keeps the class name; the wire gets nothing.
            self.debug.record_crash(app, exc)
            self.kernel.audit.record(
                A.EXIT, False, f"app:{app.name}",
                f"crashed with {type(exc).__name__}")
            return error(500, "application error")
        finally:
            taint = process.slabel
            # Back to the pool if untainted (labels/caps unchanged);
            # otherwise this is a plain kernel exit.
            self.kernel.pool.release(process)
        if isinstance(result, HttpResponse):
            result.content_label = result.content_label | taint
            result.set_cookies.update(ctx.set_cookies)
            return result
        return HttpResponse(status=200, body=result,
                            set_cookies=dict(ctx.set_cookies),
                            content_label=taint)

    # ------------------------------------------------------------------
    # HTTP front door
    # ------------------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """The full pipeline; everything the outside world ever calls.

        With tracing on, this is where the root span opens: the whole
        pipeline (and every kernel/db/fs/gateway operation it causes)
        nests under one ``{method} {path}`` trace, and the response
        status is stamped on the root so denied/erroring requests land
        in the flight recorder.
        """
        tracer = self.kernel.tracer
        if not tracer.enabled:
            return self._handle_request(request)
        # the root span's name already carries method and path; not
        # duplicating them as attrs saves a 2-entry dict per request
        with tracer.request(f"{request.method} {request.path}"):
            response = self._handle_request(request)
            tracer.annotate(status=response.status)
            return response

    def _handle_request(self, request: HttpRequest) -> HttpResponse:
        # one detail span for the whole ingress decision (cookie
        # resolution + rate-limit window), shown on sampled traces.
        # _fold is checked here so the unsampled steady state skips
        # even the detail-span ceremony (kwargs + null-span enter).
        if self.kernel.tracer._fold:
            with self.kernel.tracer.detail("gateway.admission") as sp:
                session = self.gateway.authenticate(request)
                viewer = session.username if session else None
                sp.annotate(user=viewer or "<anonymous>")
                if not self.gateway.admit(viewer):
                    sp.annotate(admitted=False)
                    return HttpResponse(status=429,
                                        body={"error": "slow down"})
            parts = request.path_parts()
            if self.plans.enabled and len(parts) >= 2 and parts[0] == "app":
                return self._handle_planned(request, viewer, parts,
                                            admitted=True)
        else:
            session = self.gateway.authenticate(request)
            viewer = session.username if session else None
            parts = request.path_parts()
            if self.plans.enabled and len(parts) >= 2 and parts[0] == "app":
                # planned dispatch runs (or statically skips) admission
                # itself; everything else is observable-identical
                return self._handle_planned(request, viewer, parts)
            if not self.gateway.admit(viewer):
                return HttpResponse(status=429,
                                    body={"error": "slow down"})
        return self._finish_request(request, viewer, parts)

    def _finish_request(self, request: HttpRequest, viewer: Optional[str],
                        parts: list[str]) -> HttpResponse:
        """Route + egress for an admitted request (the generic plane)."""
        try:
            internal = self._route(request, viewer, parts)
        except (NoSuchApp, NoSuchUser):
            internal = error(404, "not found")
        except NotAuthorized:
            internal = error(403, "forbidden")
        except (PlatformError, AuthError) as exc:
            internal = error(400, str(exc))
        except (ValueError, TypeError, KeyError):
            # malformed client input to a provider route (bad ints,
            # missing params): a client error, not a crash
            internal = error(400, "bad request")
        except Exception as exc:  # noqa: BLE001 - the front door is total
            # nothing internal may ride out on an error path (§3.5)
            self.kernel.audit.record(
                A.EXIT, False, "provider",
                f"route crashed with {type(exc).__name__}")
            internal = error(500, "internal error")
        js_policy = None
        if viewer is not None and viewer in self._accounts:
            js_policy = self._accounts[viewer].js_policy or None
        return self.gateway.egress(internal, viewer, js_policy=js_policy)

    # ------------------------------------------------------------------
    # the compiled plane (M12): plan lookup + planned dispatch
    # ------------------------------------------------------------------

    def _lookup_plan(self, app_ref: str,
                     viewer: Optional[str]) -> Optional[RequestPlan]:
        """Plan-cache lookup, with a ``plan.lookup`` detail span (and
        hit/miss annotation) on sampled traces."""
        plans = self.plans
        tracer = self.kernel.tracer
        if tracer._fold:
            before = plans._stats["hits"]
            with tracer.detail("plan.lookup", app=app_ref) as sp:
                plan = plans.lookup(app_ref, viewer)
                sp.annotate(hit=plans._stats["hits"] > before,
                            planned=plan is not None)
                return plan
        return plans.lookup(app_ref, viewer)

    def _handle_planned(self, request: HttpRequest, viewer: Optional[str],
                        parts: list[str], admitted: bool = False,
                        plan: Optional[RequestPlan] = None) -> HttpResponse:
        """The planned front door for ``/app/...`` requests.

        Observable-identical to :meth:`_finish_request` on the same
        input: the same audit events, charges and responses, with the
        pure recomputation (app resolution, launch caps, pool key,
        authority) read from the compiled plan instead.  ``plan`` may
        be passed pre-validated by :meth:`handle_batch`; account policy
        that never bumps an epoch (integrity requirement, audited pins)
        is re-checked live either way.
        """
        if not admitted and self.gateway.rate_limit is not None:
            # with a rate limit configured admission has observables
            # (window counts, 429s, audit) and must run exactly as the
            # generic plane does; without one, admit() is a constant
            # True with no side effects — the plan's static verdict.
            if not self.gateway.admit(viewer):
                return HttpResponse(status=429, body={"error": "slow down"})
        if plan is not None:
            account = plan.account
            if account is not None and (account.require_endorsed
                                        or account.audited_versions):
                plan = None  # stale hint; re-resolve (and bypass) below
        try:
            if plan is None:
                plan = self._lookup_plan(parts[1], viewer)
            if plan is None:
                internal = self._route(request, viewer, parts)
            else:
                with self.kernel.tracer.detail(
                        "app.run", app=parts[1],
                        viewer=viewer or "anonymous"):
                    internal = self._run_planned(plan, request, viewer)
        except (NoSuchApp, NoSuchUser):
            internal = error(404, "not found")
        except NotAuthorized:
            internal = error(403, "forbidden")
        except (PlatformError, AuthError) as exc:
            internal = error(400, str(exc))
        except (ValueError, TypeError, KeyError):
            internal = error(400, "bad request")
        except Exception as exc:  # noqa: BLE001 - the front door is total
            self.kernel.audit.record(
                A.EXIT, False, "provider",
                f"route crashed with {type(exc).__name__}")
            internal = error(500, "internal error")
        js_policy = None
        if viewer is not None:
            account = plan.account if plan is not None \
                else self._accounts.get(viewer)
            if account is not None:
                js_policy = account.js_policy or None
        if plan is not None and plan.authority is not None \
                and plan.auth_epoch == self.declass.authority_epoch:
            return self.gateway.egress_planned(
                internal, viewer, js_policy, plan.authority,
                plan.allow_detail)
        return self.gateway.egress(internal, viewer, js_policy=js_policy)

    def _run_planned(self, plan: RequestPlan, request: HttpRequest,
                     viewer: Optional[str]) -> HttpResponse:
        """:meth:`_run_app` with the pure prefix read from the plan.

        Process lifecycle, charges and every audit record are the
        ordinary kernel paths — a plan only skips recomputing what it
        already proved (resolution, caps, pool key, partition
        verdicts via the DbView binding).
        """
        process = self.kernel.pool.checkout_planned(plan.pool_key, viewer)
        self.kernel.resources.charge(process, "requests", 1)
        app = plan.app
        ctx = AppContext(self, app,
                         sys=self.kernel.syscalls_for(process),
                         fs=FsView(self.fs, process),
                         db=DbView(self.db, process, plan=plan),
                         request=request, viewer=viewer)
        try:
            result = app.handler(ctx)
        except LabelError:
            self.kernel.audit.record(
                A.EXPORT, False, plan.process_name,
                "killed by label violation")
            return error(403, "forbidden")
        except Exception as exc:
            self.debug.record_crash(app, exc)
            self.kernel.audit.record(
                A.EXIT, False, plan.process_name,
                f"crashed with {type(exc).__name__}")
            return error(500, "application error")
        finally:
            taint = process.slabel
            self.kernel.pool.release(process)
        if isinstance(result, HttpResponse):
            result.content_label = result.content_label | taint
            result.set_cookies.update(ctx.set_cookies)
            return result
        return HttpResponse(status=200, body=result,
                            set_cookies=dict(ctx.set_cookies),
                            content_label=taint)

    def handle_batch(self, requests: list[HttpRequest]
                     ) -> list[HttpResponse]:
        """Handle N requests with one plan lookup per distinct
        (app, viewer) pair — the M12 batch entrypoint.

        Responses come back in request order and are byte-identical to
        N separate :meth:`handle_request` calls.  Plan validity is
        re-stamped per request (three integer compares), so a request
        that edits policy mid-batch retires the shared plan for the
        requests behind it.  With plans disabled or tracing enabled
        the batch degrades to the ordinary per-request pipeline.
        """
        plans = self.plans
        if not plans.enabled or self.kernel.tracer.enabled:
            return [self.handle_request(r) for r in requests]
        responses = []
        shared: dict[tuple[str, Optional[str]], RequestPlan] = {}
        for request in requests:
            session = self.gateway.authenticate(request)
            viewer = session.username if session else None
            parts = request.path_parts()
            if len(parts) >= 2 and parts[0] == "app":
                key = (parts[1], viewer)
                plan = shared.get(key)
                if plan is not None and not plan.is_current(self):
                    del shared[key]
                    plan = None
                if plan is None and key not in shared:
                    try:
                        plan = plans.lookup(parts[1], viewer)
                    except Exception:
                        # resolution errors re-raise identically on the
                        # per-request path below
                        plan = None
                    if plan is not None:
                        shared[key] = plan
                responses.append(self._handle_planned(
                    request, viewer, parts, plan=plan))
            else:
                if not self.gateway.admit(viewer):
                    responses.append(HttpResponse(
                        status=429, body={"error": "slow down"}))
                    continue
                responses.append(
                    self._finish_request(request, viewer, parts))
        return responses

    def handle_batch_traced(self, requests: list[HttpRequest],
                            ctx: Optional[Any] = None
                            ) -> tuple[list[HttpResponse], list[dict]]:
        """:meth:`handle_batch` plus remote trace capture (M16).

        The sharded router's per-shard entrypoint: with a
        :class:`~repro.obs.TraceContext` from the router's open
        ``router.batch`` span, every trace this shard finishes for the
        sub-batch inherits the router's sampling decision and comes
        back as a skeleton dict for the router to graft — plain
        picklable data, so the same tuple shape crosses the thread
        engine's queue and the fork engine's pipe.  Without a context
        (or with tracing off) it is exactly ``handle_batch`` with an
        empty skeleton list.
        """
        tracer = self.kernel.tracer
        if ctx is None or not tracer.enabled:
            return self.handle_batch(requests), []
        from ..obs.fleet import RemoteCapture
        from ..obs.trace import TraceContext
        with RemoteCapture(tracer, TraceContext(*ctx)) as capture:
            responses = self.handle_batch(requests)
        return responses, capture.skeletons

    def explain(self, app_ref: str,
                viewer: Optional[str] = None) -> dict[str, Any]:
        """The compiled :class:`RequestPlan` for (app, viewer), as a
        serializable dict — caps, labels, partition verdicts, egress
        verdict, epoch stamps.  Works whether or not planned dispatch
        is enabled (the plan is compiled on demand), so the fast path
        is inspectable rather than opaque.  Rendered by
        ``python -m repro.analysis plan``.
        """
        plan = self.plans.lookup(app_ref, viewer)
        if plan is None:
            return {"provider": self.name, "app": app_ref,
                    "viewer": viewer, "planned": False,
                    "reason": "account policy (integrity requirement or "
                              "audited version pin) forces the generic "
                              "path for this viewer"}
        description = plan.describe()
        description["provider"] = self.name
        description["planned"] = True
        description["dispatch_enabled"] = self.plans.enabled
        description["config"] = self.config.describe()
        return description

    def _route(self, request: HttpRequest, viewer: Optional[str],
               parts: list[str]) -> HttpResponse:
        if not parts:
            return ok({"provider": self.name, "apps": sorted(
                m.name for m in self.apps.by_kind(APP))})
        head = parts[0]
        if head == "signup":
            self.signup(request.param("username"), request.param("password"))
            return ok({"created": request.param("username")})
        if head == "login":
            session = self.sessions.login(request.param("username"),
                                          request.param("password"))
            resp = ok({"welcome": session.username})
            resp.set_cookies[SESSION_COOKIE] = session.token
            return resp
        if head == "logout":
            token = request.cookies.get(SESSION_COOKIE, "")
            self.sessions.logout(token)
            return ok({"bye": True})
        if head == "policy":
            return self._route_policy(request, viewer, parts[1:])
        if head == "apps":
            return ok([{"name": m.name, "developer": m.developer,
                        "version": m.version, "kind": m.kind,
                        "description": m.description}
                       for m in self.apps])
        if head == "search":
            return ok(self.code_search(query=request.param("q"),
                                       k=int(request.param("k", 10))))
        if head == "feed":
            return self.render_universal_feed(
                viewer, k=int(request.param("k", 20)))
        if head == "app" and len(parts) >= 2:
            return self.run_app(parts[1], request, viewer)
        raise NoSuchApp("/".join(parts))

    def _route_policy(self, request: HttpRequest, viewer: Optional[str],
                      parts: list[str]) -> HttpResponse:
        """The provider's policy web forms (§2), HTTP flavor."""
        if viewer is None:
            raise NotAuthorized("log in to edit policies")
        action = parts[0] if parts else ""
        if action == "enable":
            self.enable_app(viewer, request.param("app"),
                            allow_write=bool(request.param("write", True)))
            return ok({"enabled": request.param("app")})
        if action == "disable":
            self.disable_app(viewer, request.param("app"))
            return ok({"disabled": request.param("app")})
        if action == "prefer":
            self.prefer_module(viewer, request.param("slot"),
                               request.param("module"))
            return ok({"slot": request.param("slot"),
                       "module": request.param("module")})
        if action == "declassifier":
            self.grant_builtin_declassifier(
                viewer, request.param("name"),
                config=request.param("config", {}))
            return ok({"granted": request.param("name")})
        if action == "profile":
            fields = {k: v for k, v in request.params.items()}
            self.set_profile(viewer, **fields)
            return ok({"profile": "updated"})
        if action == "integrity":
            self.set_integrity_policy(
                viewer, bool(request.param("require_endorsed", True)))
            return ok({"require_endorsed":
                       self.account(viewer).require_endorsed})
        if action == "javascript":
            policy = request.param("policy", "")
            self.set_js_policy(viewer, policy)
            return ok({"js_policy": policy or "inherit"})
        if action == "audience":
            # "who can currently receive MY data?" — each user may ask
            # about their own data only
            from .inspect import PolicyInspector
            audience = PolicyInspector(self).reachable_audience(viewer)
            return ok({"audience": [a or "anonymous" for a in audience]})
        if action == "explain":
            from .inspect import PolicyInspector
            target = request.param("viewer")
            explanation = PolicyInspector(self).explain(viewer, target)
            return ok({"viewer": target, "allowed": explanation.allowed,
                       "why": explanation.summary()})
        raise NoSuchApp(f"policy/{action}")

    # ------------------------------------------------------------------

    def transport(self):
        """The function external clients use as their network."""
        return self.handle_request
