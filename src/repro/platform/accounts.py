"""User accounts: tags, home storage, and per-user policy state.

Signing up mints the two tags the whole architecture revolves around:

* ``data_tag`` (secrecy) — everything the user stores is tainted with
  it; the boilerplate policy says it exits only toward her browser.
* ``write_tag`` (integrity) — everything she stores requires it for
  writing; delegating ``write_tag+`` is delegating write privilege
  (§3.1 Write Protection).

The account also records the user's *choices*: which applications she
enabled (the one-click signup of §1), which developer's module she
prefers in each slot ("developer A's photo cropping module and
developer B's labeling module", §2), and which apps she delegated
write privilege to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..labels import Tag


@dataclass
class UserAccount:
    """Platform-side state for one end-user."""

    username: str
    data_tag: Tag
    write_tag: Tag
    #: Apps the user enabled (adoption is a checkbox, §1).
    enabled_apps: set[str] = field(default_factory=set)
    #: Apps the user granted write privilege (``write_tag+``).
    writable_apps: set[str] = field(default_factory=set)
    #: slot name -> module ref (e.g. "cropper" -> "devA/crop@1.0").
    module_preferences: dict[str, str] = field(default_factory=dict)
    #: Profile fields the user typed in at the provider's forms.
    profile: dict[str, str] = field(default_factory=dict)
    #: §3.1 integrity protection: refuse to launch apps for this user
    #: unless every component is provider-endorsed.
    require_endorsed: bool = False
    #: The user's mail address at this provider.
    email_address: str = ""
    #: Per-user JavaScript posture at the perimeter (§3.5):
    #: "" = inherit the gateway default, else "block"/"allow".
    js_policy: str = ""
    #: §3.2 audit pinning: app name -> version this user audited.  The
    #: platform launches exactly the pinned version on her requests.
    audited_versions: dict[str, str] = field(default_factory=dict)

    @property
    def home(self) -> str:
        """The account's home directory in the labeled filesystem."""
        return f"/users/{self.username}"

    def has_enabled(self, app_name: str) -> bool:
        return app_name in self.enabled_apps

    def allows_write(self, app_name: str) -> bool:
        return app_name in self.writable_apps

    def preferred_module(self, slot: str, default: Optional[str] = None
                         ) -> Optional[str]:
        return self.module_preferences.get(slot, default)
