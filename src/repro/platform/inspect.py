"""Policy inspection: the provider's "why?" button.

W5 gives users fine-grained control (§1), which is only real if a user
can *see* the consequences of her grants.  ``PolicyInspector`` answers
the two questions a policy UI needs:

* :meth:`matrix` — for every (owner, viewer) pair, may owner-tagged
  data currently exit toward viewer?
* :meth:`explain` — *why*: which grant (or intrinsic rule) decides,
  listing every grant consulted and its verdict.

Read-only and outside the enforcement path: it reuses the same
declassifier decisions the gateway does, so what it reports is what
would happen (and a test asserts that agreement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..declassify import ReleaseContext
from .provider import Provider


@dataclass(frozen=True)
class Explanation:
    """Why data flows (or does not) from owner toward viewer."""

    owner: str
    viewer: Optional[str]
    allowed: bool
    #: The deciding rule: "owner", a declassifier name, or "".
    deciding_rule: str
    #: (declassifier name, verdict) for every grant consulted.
    consulted: tuple[tuple[str, bool], ...] = ()

    def summary(self) -> str:
        target = self.viewer or "anonymous"
        if self.allowed and self.deciding_rule == "owner":
            return f"{target} is the owner: the boilerplate policy applies"
        if self.allowed:
            return (f"released to {target} by the "
                    f"{self.deciding_rule!r} declassifier")
        if not self.consulted:
            return (f"denied: {self.owner} granted no declassifiers, "
                    f"so only {self.owner} may receive this data")
        refused = ", ".join(name for name, ok in self.consulted if not ok)
        return f"denied: every granted declassifier refused ({refused})"


class PolicyInspector:
    """Read-only policy introspection over a provider."""

    def __init__(self, provider: Provider) -> None:
        self.provider = provider

    def explain(self, owner: str, viewer: Optional[str],
                kind: str = "") -> Explanation:
        """Why may (or may not) ``owner``'s data reach ``viewer`` now?"""
        account = self.provider.account(owner)
        if viewer == owner:
            return Explanation(owner=owner, viewer=viewer, allowed=True,
                               deciding_rule="owner")
        svc = self.provider.declass
        consulted: list[tuple[str, bool]] = []
        deciding = ""
        allowed = False
        for grant in svc.grants_for(owner):
            if grant.tag != account.data_tag:
                continue
            ctx = ReleaseContext(owner=owner, viewer=viewer, kind=kind,
                                 now=svc.now)
            verdict = grant.declassifier.decide(ctx)
            consulted.append((grant.declassifier.name, verdict))
            if verdict and not allowed:
                allowed = True
                deciding = grant.declassifier.name
        return Explanation(owner=owner, viewer=viewer, allowed=allowed,
                           deciding_rule=deciding,
                           consulted=tuple(consulted))

    def matrix(self) -> dict[tuple[str, Optional[str]], bool]:
        """The full (owner, viewer) export matrix, anonymous included."""
        users = self.provider.usernames()
        out: dict[tuple[str, Optional[str]], bool] = {}
        for owner in users:
            for viewer in [*users, None]:
                out[(owner, viewer)] = self.explain(owner, viewer).allowed
        return out

    def reachable_audience(self, owner: str) -> list[Optional[str]]:
        """Everyone who could currently receive ``owner``'s data."""
        users = self.provider.usernames()
        return [viewer for viewer in [*users, None]
                if self.explain(owner, viewer).allowed]
