"""The application context: everything developer code gets at launch.

When a request reaches an application, the platform spawns a confined
process and calls the app's handler with one argument — an
:class:`AppContext`.  Through it the app reaches the syscall API, the
labeled filesystem and database (all bound to its own process, so every
access is checked), the request, and a few conveniences.

Nothing here is trusted: the context only *curries* the process into
interfaces whose checks live below it.  A malicious handler can call
anything on this object and still cannot exceed its labels.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from ..db import DbView
from ..fs import FsView
from ..kernel import W5Syscalls
from ..labels import Tag
from ..net import HttpRequest
from .errors import NoSuchApp, NoSuchUser
from .registry import AppModule

if TYPE_CHECKING:  # pragma: no cover
    from .provider import Provider


class AppContext:
    """Per-request world handed to an application handler."""

    def __init__(self, provider: "Provider", app: AppModule,
                 sys: W5Syscalls, fs: FsView, db: DbView,
                 request: HttpRequest, viewer: Optional[str]) -> None:
        self.provider = provider
        self.app = app
        self.sys = sys
        self.fs = fs
        self.db = db
        self.request = request
        #: The authenticated user this request renders for (None = anon).
        self.viewer = viewer
        #: Cookies the response should set.
        self.set_cookies: dict[str, str] = {}

    # -- identity helpers -------------------------------------------------

    def tag_for(self, username: str) -> Tag:
        """A user's data tag.  Tag *identity* is public metadata — only
        the capabilities over it are guarded."""
        return self.provider.account(username).data_tag

    def write_tag_for(self, username: str) -> Tag:
        return self.provider.account(username).write_tag

    def users(self) -> list[str]:
        """All usernames (public directory)."""
        return self.provider.usernames()

    def profile_of(self, username: str) -> dict[str, str]:
        """A user's profile fields.

        Profiles are the user's *data*: reading one taints the calling
        process with the owner's tag (the process must be able to raise
        to it, i.e. the owner enabled this app).
        """
        account = self.provider.account(username)
        self.read_user(username)
        return dict(account.profile)

    # -- label conveniences ---------------------------------------------

    def read_user(self, owner: str) -> None:
        """Taint this process with ``owner``'s data tag so it may read
        their files/rows.  Requires the ``tag+`` capability, which the
        launch granted iff ``owner`` enabled this app."""
        tag = self.tag_for(owner)
        if tag not in self.sys.my_secrecy():
            self.sys.raise_secrecy(tag)

    def reading_users(self) -> list[str]:
        """Usernames whose tags this process currently carries."""
        carried = self.sys.my_secrecy()
        return [u for u in self.users() if self.tag_for(u) in carried]

    # -- group spaces (§3.1 "roommates") ----------------------------------

    def my_groups(self) -> list[str]:
        """Groups the viewer belongs to."""
        if self.viewer is None:
            return []
        return self.provider.groups.groups_of(self.viewer)

    def read_group(self, name: str) -> None:
        """Taint with a group's tag to read its shared space.  Works
        only if some member of the group enabled this app (that is
        what put the ``tag+`` in the launch capabilities)."""
        group = self.provider.groups.get(name)
        if group.data_tag not in self.sys.my_secrecy():
            self.sys.raise_secrecy(group.data_tag)

    def group_tags(self, name: str):
        """(data_tag, write_tag) of a group, for labeling shared data."""
        group = self.provider.groups.get(name)
        return group.data_tag, group.write_tag

    # -- module composition (§2: user-chosen modules) ----------------------

    def call_module(self, slot: str, default_ref: str,
                    *args: Any, **kwargs: Any) -> Any:
        """Invoke the viewer's preferred module for ``slot``.

        The chosen module's handler runs *in this same confined
        process* — it can do nothing the app itself could not.  The
        invocation is recorded as a usage edge for the §3.2 code
        search.
        """
        ref = default_ref
        if self.viewer is not None:
            account = self.provider.account(self.viewer)
            ref = account.preferred_module(slot, default_ref)
        module = self.provider.modules.get(ref)
        self.provider.record_usage(self.app.name, module.name)
        return module.handler(self, *args, **kwargs)

    # -- the mail exit (§2 daily digest / §3.1 export policy) -------------

    def send_email(self, to_address: str, subject: str, body: Any):
        """Send mail through the perimeter's email gateway.

        The content label is this process's *current* secrecy label —
        whatever the app has read so far rides along, and the gateway
        refuses delivery unless the address's owner is cleared for all
        of it (§3.1: data may go to the owner's roommates "and
        certainly not, say, emailed to the application's author").
        """
        return self.provider.email.send(
            to_address, subject, body,
            content_label=self.sys.my_secrecy())

    def my_email_address(self) -> str:
        if self.viewer is None:
            raise NoSuchUser("anonymous users have no mailbox")
        return self.provider.account(self.viewer).email_address

    # -- response helpers ----------------------------------------------

    def set_cookie(self, name: str, value: str) -> None:
        self.set_cookies[name] = value


#: Application handler signature.
AppHandler = Callable[[AppContext], Any]
