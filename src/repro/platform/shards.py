"""Sharded concurrent request plane (M13).

PRs 1–6 made one provider's request path ~40–50× faster, but the
provider is still one Python object handling one request at a time.
This module scales *out* instead of *up*: a :class:`ShardedProvider`
partitions users across N full :class:`~repro.platform.provider.Provider`
shards — each with its own kernel, tag registry, audit log, process
pool, stores, plan cache and write-ahead journal (the M10 journal is
the per-shard log) — and routes every request to the shard that owns
its subject.

**Placement.**  A :class:`ShardMap` consistent-hash ring (vnode
replicas, stable blake2b points — never Python's randomized ``hash``)
assigns each username a shard.  Because every labeled partition key in
the M9 data plane is an interned ``(slabel, ilabel)`` pair whose tags
carry their owner, :meth:`ShardMap.shard_of_pair` derives the *data*
placement from the same ring: a partition lives on the shard of the
first (deterministically ordered) tag owner in its secrecy label.
Users are the unit of sharding, so a user's sessions, account row,
files, db partitions, grants, plans and journal records are all
shard-local by construction — shards share **no** mutable state, which
is what makes concurrent execution trivially linearizable per shard.

**Engines.**  Shard execution is pluggable:

* ``serial`` — in-line on the caller thread, ascending shard order.
  The deterministic baseline, and the automatic choice at 1 shard so
  "sharding off" costs nothing over the classic plane.
* ``thread`` — one dedicated worker thread per shard with a request
  queue.  Each shard stays single-threaded (its kernel/caches need no
  locks) while distinct shards run concurrently.  Under CPython's GIL
  this overlaps only the interpreter's release points, so it is the
  *safety* engine: the differential suite proves thread-interleaved
  execution byte-identical to serial.
* ``fork`` — one forked child process per shard speaking a pickled
  pipe protocol (batch-oriented).  This is the engine that actually
  scales with cores under the GIL; ``benchmarks/m13_shards.py``
  measures it.

**Deterministic merge.**  Each shard's audit stream is already
deterministic (per-shard seq order); :class:`MergedAuditView` merges
the streams by ``(shard, seq)`` — a total order independent of thread
scheduling — so the merged stream is byte-identical run-to-run and
engine-to-engine.  ``tests/platform/test_shard_differential.py``
proves: threaded == serial at every shard count, and a 1-shard
``ShardedProvider`` == the classic ``ProviderConfig.fast()`` plane,
responses and audit streams both.

The ownership guards (``AuditLog.bind_owner`` /
``Metrics.bind_owner``) back-stop the router: the thread engine binds
each shard's audit log to its worker, so a misrouted cross-shard write
raises :class:`~repro.errors.CrossShardWrite` instead of interleaving
two shards' streams.
"""

from __future__ import annotations

import os
import pickle
from bisect import bisect_right
from hashlib import blake2b
from typing import Any, Callable, Iterator, Optional, Sequence

from ..errors import W5Error
from ..kernel.audit import AuditEvent
from ..net import SESSION_COOKIE, HttpRequest, HttpResponse
from ..obs import NULL_TRACER, FlightRecorder, LatencyHistogram, Tracer
from ..obs.trace import TraceContext
from .config import ProviderConfig
from .provider import Provider

#: The SessionManager default seed (shard 0 keeps it; shard k adds k,
#: so no two shards ever mint the same session token).
_SESSION_SEED = 0x57515

#: Params consulted, in order, to route an *anonymous* app request to
#: the shard owning the data it names (a locality heuristic only —
#: correctness never depends on it, since anonymous requests touch no
#: session state and every shard serves the same app catalog).
_ANON_USER_PARAMS = ("username", "user", "author", "owner")


class ShardMap:
    """Consistent-hash ring mapping owners to shards.

    ``replicas`` vnodes per shard smooth the distribution; points come
    from blake2b so placement is stable across processes and runs
    (Python's ``hash`` is randomized per interpreter).  Consistent
    hashing (vs ``hash % N``) keeps most placements stable when a
    future PR resizes the ring.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.replicas = replicas
        ring = sorted(
            (self._point(f"shard:{shard}:{vnode}"), shard)
            for shard in range(n_shards) for vnode in range(replicas))
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    @staticmethod
    def _point(key: str) -> int:
        digest = blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def shard_of(self, key: str) -> int:
        """The shard owning an arbitrary string key."""
        if self.n_shards == 1:
            return 0
        i = bisect_right(self._points, self._point(key))
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def shard_of_user(self, username: str) -> int:
        """The shard that is ``username``'s home."""
        return self.shard_of(f"user:{username}")

    def shard_of_pair(self, slabel: Any, ilabel: Any) -> int:
        """Placement of an interned ``(slabel, ilabel)`` partition key.

        The M9 data plane partitions every table by this pair; each
        user-data tag carries its owner, so the pair's placement is the
        ring position of its first owner (owners sorted for
        determinism — in practice user-data labels carry exactly one
        owned tag).  Unowned pairs (public/unlabeled data) land on
        shard 0, where they are replicated state anyway.
        """
        for label in (slabel, ilabel):
            owners = sorted(t.owner for t in label if t.owner)
            if owners:
                return self.shard_of_user(owners[0])
        return 0

    def distribution(self, keys: Sequence[str]) -> list[int]:
        """Shard population for ``keys`` (ring-quality diagnostics)."""
        counts = [0] * self.n_shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts


# ----------------------------------------------------------------------
# execution engines
# ----------------------------------------------------------------------

class _Raised:
    """A worker-side exception in transit to the caller."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


def _resolve(provider: Provider, dotted: str) -> Callable[..., Any]:
    """``"declass.grant_for"`` → the bound method on ``provider``."""
    obj: Any = provider
    for part in dotted.split("."):
        obj = getattr(obj, part)
    return obj


class _SerialEngine:
    """In-line execution, ascending shard order: the deterministic
    schedule every concurrent engine must reproduce per shard."""

    name = "serial"

    def __init__(self, shards: list[Provider]) -> None:
        self.shards = shards

    def request(self, shard: int, request: HttpRequest) -> HttpResponse:
        return self.shards[shard].handle_request(request)

    def run_batches(self, groups: dict[int, list[HttpRequest]],
                    ctx: Optional[TraceContext] = None
                    ) -> tuple[dict[int, list[HttpResponse]],
                               dict[int, list[dict]]]:
        responses: dict[int, list[HttpResponse]] = {}
        skeletons: dict[int, list[dict]] = {}
        for shard, reqs in sorted(groups.items()):
            responses[shard], skeletons[shard] = \
                self.shards[shard].handle_batch_traced(reqs, ctx)
        return responses, skeletons

    def call(self, shard: int, method: str,
             args: tuple = (), kwargs: Optional[dict] = None) -> Any:
        return _resolve(self.shards[shard], method)(*args, **(kwargs or {}))

    def broadcast(self, method: str, args: tuple = (),
                  kwargs: Optional[dict] = None) -> list[Any]:
        return [_resolve(s, method)(*args, **(kwargs or {}))
                for s in self.shards]

    def audit_events(self, shard: int) -> list[AuditEvent]:
        return list(self.shards[shard].kernel.audit)

    def shutdown(self) -> None:
        pass


class _ThreadEngine:
    """One dedicated worker thread per shard.

    Every operation touching shard state — requests *and* control-plane
    calls — executes on the shard's worker, so each shard remains
    single-threaded (no locks anywhere in the kernel) while distinct
    shards overlap.  The worker binds the shard's audit log to itself
    on startup: any write reaching the shard from another thread is a
    routing bug and raises :class:`~repro.errors.CrossShardWrite`.
    """

    name = "thread"

    def __init__(self, shards: list[Provider]) -> None:
        import queue
        import threading
        self.shards = shards
        self._queues: list[Any] = []
        self._threads: list[Any] = []
        for k, shard in enumerate(shards):
            q: Any = queue.SimpleQueue()
            t = threading.Thread(target=self._worker, args=(shard, q),
                                 name=f"w5-shard-{k}", daemon=True)
            self._queues.append(q)
            self._threads.append(t)
            t.start()
        self._threading = threading

    @staticmethod
    def _worker(shard: Provider, q: Any) -> None:
        shard.kernel.audit.bind_owner()
        while True:
            item = q.get()
            if item is None:
                shard.kernel.audit.unbind_owner()
                return
            fn, box, done = item
            try:
                box.append(fn())
            except BaseException as exc:  # transported to the caller
                box.append(_Raised(exc))
            done.set()

    def _submit(self, shard: int, fn: Callable[[], Any]) -> tuple:
        done = self._threading.Event()
        box: list[Any] = []
        self._queues[shard].put((fn, box, done))
        return box, done

    @staticmethod
    def _wait(box: list, done: Any) -> Any:
        done.wait()
        result = box[0]
        if isinstance(result, _Raised):
            raise result.exc
        return result

    def request(self, shard: int, request: HttpRequest) -> HttpResponse:
        handle = self.shards[shard].handle_request
        return self._wait(*self._submit(shard, lambda: handle(request)))

    def run_batches(self, groups: dict[int, list[HttpRequest]],
                    ctx: Optional[TraceContext] = None
                    ) -> tuple[dict[int, list[HttpResponse]],
                               dict[int, list[dict]]]:
        # dispatch every shard's sub-batch before waiting on any: the
        # fan-out is what overlaps shard execution.  The trace context
        # rides the submitted closure through the SimpleQueue tuple;
        # skeletons come back in the same result box as the responses.
        pending = {
            shard: self._submit(
                shard, (lambda h=self.shards[shard].handle_batch_traced,
                        rs=reqs: h(rs, ctx)))
            for shard, reqs in sorted(groups.items())}
        responses: dict[int, list[HttpResponse]] = {}
        skeletons: dict[int, list[dict]] = {}
        for shard, p in pending.items():
            responses[shard], skeletons[shard] = self._wait(*p)
        return responses, skeletons

    def call(self, shard: int, method: str,
             args: tuple = (), kwargs: Optional[dict] = None) -> Any:
        fn = _resolve(self.shards[shard], method)
        return self._wait(*self._submit(
            shard, lambda: fn(*args, **(kwargs or {}))))

    def broadcast(self, method: str, args: tuple = (),
                  kwargs: Optional[dict] = None) -> list[Any]:
        pending = []
        for k, shard in enumerate(self.shards):
            fn = _resolve(shard, method)
            pending.append(self._submit(
                k, lambda f=fn: f(*args, **(kwargs or {}))))
        return [self._wait(*p) for p in pending]

    def audit_events(self, shard: int) -> list[AuditEvent]:
        # reads are issued between operations (workers idle); the
        # bind_owner guard covers writes only, by design
        return list(self.shards[shard].kernel.audit)

    def shutdown(self) -> None:
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            t.join(timeout=5)


def _plain_response(resp: HttpResponse) -> tuple:
    """Reduce a response to picklable plain data.  The gateway already
    re-stamped ``content_label`` to EMPTY at egress, so nothing is
    lost crossing the pipe."""
    return (resp.status, resp.body, resp.headers, resp.set_cookies)


def _rebuild_response(plain: tuple) -> HttpResponse:
    status, body, headers, set_cookies = plain
    return HttpResponse(status=status, body=body, headers=headers,
                        set_cookies=set_cookies)


def _transportable_exc(exc: BaseException) -> BaseException:
    """The exception itself when picklable, else a W5Error replica."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return W5Error(f"{type(exc).__name__}: {exc}")


def _fork_worker(shard: Provider, conn: Any) -> None:
    """The child process loop: one shard, one pipe, batch-oriented."""
    while True:
        try:
            op = conn.recv()
        except EOFError:
            return
        kind = op[0]
        try:
            if kind == "batch":
                # op = ("batch", requests, trace_context|None): spans
                # recorded in this child are serialized to skeleton
                # dicts and shipped back with the responses — never
                # silently lost to the process boundary (M16)
                ctx = op[2] if len(op) > 2 else None
                resps, skeletons = shard.handle_batch_traced(op[1], ctx)
                conn.send(("ok", ([_plain_response(r) for r in resps],
                                  skeletons)))
            elif kind == "request":
                conn.send(("ok",
                           _plain_response(shard.handle_request(op[1]))))
            elif kind == "call":
                result = _resolve(shard, op[1])(*op[2], **op[3])
                try:
                    conn.send(("ok", result))
                except Exception:
                    # control calls are for effect; an unpicklable
                    # return (a grant, an account) degrades to None
                    conn.send(("ok", None))
            elif kind == "audit":
                conn.send(("ok", [
                    (e.seq, e.category, e.allowed, e.subject, e.detail)
                    for e in shard.kernel.audit]))
            elif kind == "stop":
                conn.send(("ok", True))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("err", W5Error(f"unknown op {kind!r}")))
        except BaseException as exc:
            conn.send(("err", _transportable_exc(exc)))


class _ForkEngine:
    """One forked child process per shard, batch-oriented pipe RPC.

    The only engine that scales with cores under the GIL.  Children
    are forked lazily on first dispatch, so all setup done before then
    (signups, enables, grants) is inherited by every child for free;
    control calls after the fork cross the pipe.  Requests pickle as
    plain dataclasses; responses come back as ``(status, body,
    headers, set_cookies)`` tuples (egress already stripped labels).
    """

    name = "fork"

    def __init__(self, shards: list[Provider]) -> None:
        if not hasattr(os, "fork"):  # pragma: no cover - platform gate
            raise W5Error("the fork shard engine needs os.fork (POSIX); "
                          "use engine='thread' here")
        self.shards = shards
        self._conns: Optional[list[Any]] = None
        self._pids: list[int] = []

    def _ensure_started(self) -> list[Any]:
        if self._conns is not None:
            return self._conns
        import multiprocessing
        conns = []
        for shard in self.shards:
            parent, child = multiprocessing.Pipe()
            pid = os.fork()
            if pid == 0:  # child
                parent.close()
                try:
                    _fork_worker(shard, child)
                finally:
                    os._exit(0)
            child.close()
            conns.append(parent)
            self._pids.append(pid)
        self._conns = conns
        return conns

    @staticmethod
    def _rpc(conn: Any, op: tuple) -> Any:
        conn.send(op)
        return _ForkEngine._recv(conn)

    @staticmethod
    def _recv(conn: Any) -> Any:
        status, payload = conn.recv()
        if status == "err":
            raise payload
        return payload

    def request(self, shard: int, request: HttpRequest) -> HttpResponse:
        conn = self._ensure_started()[shard]
        return _rebuild_response(self._rpc(conn, ("request", request)))

    def run_batches(self, groups: dict[int, list[HttpRequest]],
                    ctx: Optional[TraceContext] = None
                    ) -> tuple[dict[int, list[HttpResponse]],
                               dict[int, list[dict]]]:
        conns = self._ensure_started()
        ordered = sorted(groups.items())
        for shard, reqs in ordered:  # fan out first: children overlap
            conns[shard].send(("batch", reqs, ctx))
        responses: dict[int, list[HttpResponse]] = {}
        skeletons: dict[int, list[dict]] = {}
        for shard, _ in ordered:
            plain, skels = self._recv(conns[shard])
            responses[shard] = [_rebuild_response(t) for t in plain]
            skeletons[shard] = skels
        return responses, skeletons

    def call(self, shard: int, method: str,
             args: tuple = (), kwargs: Optional[dict] = None) -> Any:
        if self._conns is None:
            # pre-fork: run in the parent so children inherit the effect
            return _resolve(self.shards[shard], method)(
                *args, **(kwargs or {}))
        return self._rpc(self._conns[shard],
                         ("call", method, args, kwargs or {}))

    def broadcast(self, method: str, args: tuple = (),
                  kwargs: Optional[dict] = None) -> list[Any]:
        if self._conns is None:
            return [_resolve(s, method)(*args, **(kwargs or {}))
                    for s in self.shards]
        for conn in self._conns:
            conn.send(("call", method, args, kwargs or {}))
        return [self._recv(conn) for conn in self._conns]

    def audit_events(self, shard: int) -> list[AuditEvent]:
        if self._conns is None:
            return list(self.shards[shard].kernel.audit)
        rows = self._rpc(self._conns[shard], ("audit",))
        return [AuditEvent(seq, category, allowed, subject, detail)
                for seq, category, allowed, subject, detail in rows]

    def shutdown(self) -> None:
        if self._conns is None:
            return
        for conn in self._conns:
            try:
                self._rpc(conn, ("stop",))
                conn.close()
            except (EOFError, OSError, BrokenPipeError):
                pass
        for pid in self._pids:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
        self._conns = None
        self._pids = []


_ENGINES: dict[str, Any] = {
    "serial": _SerialEngine,
    "thread": _ThreadEngine,
    "fork": _ForkEngine,
}


# ----------------------------------------------------------------------
# merged observability
# ----------------------------------------------------------------------

class MergedAuditView:
    """The sharded deployment's audit stream, merged by ``(shard, seq)``.

    Within a shard, events are already totally ordered by ``seq``; the
    merge concatenates shard streams in shard order — a deterministic
    total order independent of worker scheduling, so the merged stream
    is byte-identical between the serial and concurrent engines on the
    same per-shard request order.  Exposes the read side of the
    :class:`~repro.kernel.audit.AuditLog` query API; it is a *view* —
    every read re-merges live shard state.
    """

    def __init__(self, owner: "ShardedProvider") -> None:
        self._owner = owner

    def per_shard(self) -> list[list[AuditEvent]]:
        """Each shard's stream, in shard order (events shared, not
        copied — treat as read-only)."""
        engine = self._owner._engine
        return [engine.audit_events(k)
                for k in range(self._owner.n_shards)]

    def __iter__(self) -> Iterator[AuditEvent]:
        for stream in self.per_shard():
            yield from stream

    def __len__(self) -> int:
        return sum(len(s) for s in self.per_shard())

    def events(self, category: Optional[str] = None,
               subject: Optional[str] = None,
               allowed: Optional[bool] = None) -> list[AuditEvent]:
        out = []
        for e in self:
            if category is not None and e.category != category:
                continue
            if subject is not None and e.subject != subject:
                continue
            if allowed is not None and e.allowed != allowed:
                continue
            out.append(e)
        return out

    def denials(self, category: Optional[str] = None) -> list[AuditEvent]:
        return self.events(category=category, allowed=False)

    def count(self, category: Optional[str] = None,
              allowed: Optional[bool] = None) -> int:
        return len(self.events(category=category, allowed=allowed))

    def last(self) -> Optional[AuditEvent]:
        for stream in reversed(self.per_shard()):
            if stream:
                return stream[-1]
        return None


class _ShardedKernelView:
    """The slice of the kernel surface a front end can meaningfully
    merge: today, the audit stream (``W5System.audit()`` reads it)."""

    def __init__(self, owner: "ShardedProvider") -> None:
        self.audit = MergedAuditView(owner)


class _ShardedDeclassView:
    """Routes the declassification reads W5System's sugar needs to the
    owning shard (e.g. ``declass.grant_for(user, name)``)."""

    def __init__(self, owner: "ShardedProvider") -> None:
        self._owner = owner

    def grant_for(self, username: str, name: str) -> Any:
        return self._owner._user_call(username, "declass.grant_for",
                                      username, name)


# ----------------------------------------------------------------------
# the front end
# ----------------------------------------------------------------------

class ShardedProvider:
    """N full providers behind one router.

    Quacks like a :class:`Provider` for the surfaces W5System, the
    external clients and the benchmarks use: ``handle_request`` /
    ``handle_batch`` / ``transport``, the user-policy verbs (routed to
    the owning shard), app registration (broadcast — every shard
    serves the whole catalog), and merged observability
    (``kernel.audit``, ``trace_report``, ``stats``).

    Routing: ``/signup`` and ``/login`` go by the ``username`` param;
    authenticated requests go by session cookie (the front end records
    token → shard when a login response passes through); anonymous
    requests go by a user-naming param when present, else by path
    hash.  At 1 shard, routing short-circuits entirely — the classic
    plane with a dictionary's worth of indirection removed, which is
    the "no regression when sharding is off" guarantee the M13
    benchmark pins.
    """

    def __init__(self, name: str = "w5", n_shards: int = 2,
                 config: Optional[ProviderConfig] = None,
                 engine: Optional[str] = None,
                 js_policy: str = "block",
                 rate_limit: Optional[int] = None,
                 audit_max_events: Optional[int] = None,
                 tracing: bool = False,
                 resources_factory: Optional[Callable[[], Any]] = None,
                 replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        base = config if config is not None else ProviderConfig.fast()
        if engine is None:
            engine = base.shard_engine
        #: The deployment-level config (records the shard count).
        self.config = base.replace(shards=n_shards, shard_engine=engine)
        per_shard = base.replace(shards=1, shard_engine=None)
        self.name = name
        self.n_shards = n_shards
        self.map = ShardMap(n_shards, replicas=replicas)
        #: The shard providers.  Shard 0 keeps the default session
        #: seed (a 1-shard deployment is byte-identical to the classic
        #: plane); shard k seeds with base+k so tokens never collide.
        self.shards: list[Provider] = []
        for k in range(n_shards):
            self.shards.append(Provider(
                name=name,
                resources=(resources_factory() if resources_factory
                           else None),
                js_policy=js_policy,
                rate_limit=rate_limit,
                audit_max_events=audit_max_events,
                tracing=tracing,
                config=per_shard,
                session_seed=None if k == 0 else _SESSION_SEED + k))
        if engine is None:
            engine = "serial" if n_shards == 1 else "thread"
        if engine not in _ENGINES:
            raise ValueError(f"unknown shard engine {engine!r} "
                             f"(have {sorted(_ENGINES)})")
        self.engine_name = engine
        self._engine = _ENGINES[engine](self.shards)
        #: The router's own tracer (M16): cross-shard batches open a
        #: ``router.batch`` root here, export its context to every
        #: shard they fan out to, and graft the returned span
        #: skeletons — so the router recorder holds the *stitched*
        #: causal tree spanning every shard a batch touched.
        self.tracing = tracing
        if tracing:
            self.tracer: Any = Tracer()
            self.recorder: Optional[FlightRecorder] = FlightRecorder()
            self.tracer.sink = self.recorder.offer
        else:
            self.tracer = NULL_TRACER
            self.recorder = None
        self._token_shard: dict[str, int] = {}
        #: Requests routed per shard (front-end side, any engine).
        self.routed: list[int] = [0] * n_shards
        self.kernel = _ShardedKernelView(self)
        self.declass = _ShardedDeclassView(self)

    # -- routing -------------------------------------------------------

    def shard_for(self, request: HttpRequest) -> int:
        """The shard this request must execute on."""
        if self.n_shards == 1:
            return 0
        parts = request.path_parts()
        if parts and parts[0] in ("signup", "login"):
            username = request.params.get("username")
            if username is not None:
                return self.map.shard_of_user(username)
        token = request.cookies.get(SESSION_COOKIE)
        if token:
            shard = self._token_shard.get(token)
            if shard is not None:
                return shard
            # unknown token (e.g. replay after front-end restart):
            # deterministic fallback; the shard answers auth errors
            # exactly as the unsharded plane would
            return self.map.shard_of(f"token:{token}")
        for key in _ANON_USER_PARAMS:
            named = request.params.get(key)
            if isinstance(named, str) and named:
                return self.map.shard_of_user(named)
        return self.map.shard_of(f"path:{request.path}")

    def _note_response(self, shard: int, request: HttpRequest,
                       response: HttpResponse) -> None:
        if self.n_shards == 1:
            return
        if response.set_cookies:
            token = response.set_cookies.get(SESSION_COOKIE)
            if token:
                self._token_shard[token] = shard
        parts = request.path_parts()
        if parts and parts[0] == "logout":
            self._token_shard.pop(
                request.cookies.get(SESSION_COOKIE, ""), None)

    # -- the request plane ---------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        shard = self.shard_for(request)
        self.routed[shard] += 1
        response = self._engine.request(shard, request)
        self._note_response(shard, request, response)
        return response

    def handle_batch(self, requests: Sequence[HttpRequest]
                     ) -> list[HttpResponse]:
        """Fan a burst out across shards (satellite 2).

        Requests are grouped by owning shard *preserving per-shard
        arrival order*, the groups execute concurrently (each through
        the shard's own M12 ``handle_batch`` shared-plan path), and
        responses reassemble in request order — so the result is
        position-for-position identical to sequential dispatch.
        """
        requests = list(requests)
        if self.n_shards == 1:
            self.routed[0] += len(requests)
            return self.shards[0].handle_batch(requests)
        tracer = self.tracer
        if not tracer.enabled:
            return self._run_batch(requests, None)
        # fleet tracing (M16): one router.batch root per batch; every
        # shard's spans come back as skeletons and graft under it, in
        # (shard, per-shard arrival) order — the same deterministic
        # total order as the audit merge
        with tracer.request("router.batch", n=len(requests)):
            responses = self._run_batch(requests, tracer.export_context())
        return responses

    def _run_batch(self, requests: list[HttpRequest],
                   ctx: Optional[TraceContext]) -> list[HttpResponse]:
        groups: dict[int, list[HttpRequest]] = {}
        slots: dict[int, list[int]] = {}
        assignment = []
        shard_for = self.shard_for
        for i, request in enumerate(requests):
            shard = shard_for(request)
            assignment.append(shard)
            groups.setdefault(shard, []).append(request)
            slots.setdefault(shard, []).append(i)
        for shard, grouped in groups.items():
            self.routed[shard] += len(grouped)
        by_shard, skeletons = self._engine.run_batches(groups, ctx)
        if ctx is not None:
            tracer = self.tracer
            tracer.annotate(shards=len(groups))
            for shard in sorted(skeletons):
                for skeleton in skeletons[shard]:
                    tracer.graft(f"shard:{shard}", skeleton)
        responses: list[Optional[HttpResponse]] = [None] * len(requests)
        for shard, resps in by_shard.items():
            for i, resp in zip(slots[shard], resps):
                responses[i] = resp
        # _note_response inlined for the batch: the common case (no
        # session cookie minted, not a logout) must not pay a method
        # call per request on the fleet's disabled hot path
        token_shard = self._token_shard
        for i, request in enumerate(requests):
            response = responses[i]
            if response.set_cookies:
                token = response.set_cookies.get(SESSION_COOKIE)
                if token:
                    token_shard[token] = assignment[i]
            parts = request.path_parts()
            if parts and parts[0] == "logout":
                token_shard.pop(
                    request.cookies.get(SESSION_COOKIE, ""), None)
        return responses  # type: ignore[return-value]

    def transport(self):
        """The function external clients use as their network."""
        return self.handle_request

    # -- control plane (routed / broadcast) ----------------------------

    def _user_call(self, username: str, method: str,
                   *args: Any, **kwargs: Any) -> Any:
        """Run a per-user verb on the user's home shard."""
        shard = self.map.shard_of_user(username)
        return self._engine.call(shard, method, args, kwargs)

    def shard_of_user(self, username: str) -> int:
        return self.map.shard_of_user(username)

    def signup(self, username: str, password: str) -> Any:
        return self._user_call(username, "signup", username, password)

    def account(self, username: str) -> Any:
        return self._user_call(username, "account", username)

    def set_profile(self, username: str, **fields: str) -> None:
        return self._user_call(username, "set_profile", username, **fields)

    def enable_app(self, username: str, app_name: str,
                   **kwargs: Any) -> Any:
        return self._user_call(username, "enable_app", username,
                               app_name, **kwargs)

    def disable_app(self, username: str, app_name: str) -> None:
        return self._user_call(username, "disable_app", username, app_name)

    def prefer_module(self, username: str, slot: str, module: str) -> None:
        return self._user_call(username, "prefer_module", username,
                               slot, module)

    def grant_declassifier(self, username: str, declassifier: Any) -> Any:
        return self._user_call(username, "grant_declassifier", username,
                               declassifier)

    def grant_builtin_declassifier(self, username: str, name: str,
                                   config: Optional[dict] = None) -> Any:
        return self._user_call(username, "grant_builtin_declassifier",
                               username, name, config)

    def update_declassifier_config(self, username: str, name: str,
                                   **changes: Any) -> Any:
        return self._user_call(username, "update_declassifier_config",
                               username, name, **changes)

    def set_integrity_policy(self, username: str, require: bool) -> None:
        return self._user_call(username, "set_integrity_policy",
                               username, require)

    def set_js_policy(self, username: str, policy: str) -> None:
        return self._user_call(username, "set_js_policy", username, policy)

    def pin_audited(self, username: str, app_name: str,
                    version: str) -> None:
        return self._user_call(username, "pin_audited", username,
                               app_name, version)

    def unpin_audited(self, username: str, app_name: str) -> None:
        return self._user_call(username, "unpin_audited", username,
                               app_name)

    def store_user_data(self, username: str, filename: str,
                        data: Any) -> Any:
        return self._user_call(username, "store_user_data", username,
                               filename, data)

    def read_user_data(self, username: str, filename: str) -> Any:
        return self._user_call(username, "read_user_data", username,
                               filename)

    def delete_account(self, username: str) -> None:
        return self._user_call(username, "delete_account", username)

    def register_app(self, module: Any) -> Any:
        """Broadcast: every shard serves the whole app catalog (apps
        are code, not user state — only *data* is partitioned)."""
        return self._engine.broadcast("register_app", (module,))[0]

    def endorse_module(self, name: str) -> Any:
        return self._engine.broadcast("endorse_module", (name,))[0]

    # -- merged observability ------------------------------------------

    @property
    def apps(self) -> Any:
        """The app registry (shard 0's copy; registration broadcasts,
        so every shard's registry holds the same catalog)."""
        return self.shards[0].apps

    @property
    def usage_edges(self) -> list:
        return self.shards[0].usage_edges

    def merged_audit(self) -> MergedAuditView:
        """The deterministic ``(shard, seq)`` merge of every shard's
        audit stream (also available as ``.kernel.audit``)."""
        return self.kernel.audit

    def placement_report(self) -> dict[str, Any]:
        """Verify data placement against the ring: walk every shard's
        M9 partition keys and check the owning shard derived from the
        interned ``(slabel, ilabel)`` pair is the shard holding it.
        Serial/thread engines only (reads parent-side state)."""
        report: dict[str, Any] = {"shards": self.n_shards,
                                  "partitions": 0, "misplaced": 0}
        for k, shard in enumerate(self.shards):
            for table in shard.db._tables.values():
                partitions = getattr(table, "partitions", None)
                if not partitions:
                    continue
                for slabel, ilabel in partitions:
                    report["partitions"] += 1
                    owner_shard = self.map.shard_of_pair(slabel, ilabel)
                    # unowned pairs are replicated state, at home
                    # anywhere; owned pairs must live on their ring shard
                    if any(t.owner for t in slabel) and owner_shard != k:
                        report["misplaced"] += 1
        return report

    def trace_report(self) -> dict[str, Any]:
        """The deployment's *merged* trace report (M16).

        ``stats``/``latencies``/``histograms`` are exact merges across
        every shard plus the router itself (histograms merge
        bucket-wise through their snapshots, so the numbers are
        identical whether the shards ran in-process or behind the fork
        engine's pipe).  ``router`` carries the router tracer's own
        counters and its flight recorder — whose ``router.batch``
        traces are the stitched cross-shard trees, one root per batch
        with every request's subtree grafted under it.  ``shards`` is
        the pre-M16 unmerged per-shard broadcast, kept as a deprecated
        alias for callers that still want the raw per-shard view.
        """
        shard_reports = self._engine.broadcast("trace_report")
        tracing = self.tracer.enabled or bool(
            shard_reports and shard_reports[0].get("tracing"))
        if not tracing:
            return {"tracing": False, "shards": shard_reports}
        stats = {"traces_started": 0, "traces_finished": 0,
                 "spans_dropped": 0}
        merged: dict[str, LatencyHistogram] = {}
        sources = [r for r in shard_reports if r.get("tracing")]
        if self.tracer.enabled:
            sources.append({"stats": self.tracer.stats(),
                            "histograms": {
                                name: hist.snapshot() for name, hist
                                in self.tracer._histograms.items()}})
        for report in sources:
            for key in stats:
                stats[key] += report["stats"].get(key, 0)
            for name, snap in report.get("histograms", {}).items():
                hist = LatencyHistogram.from_snapshot(snap)
                if name in merged:
                    merged[name].merge(hist)
                else:
                    merged[name] = hist
        report: dict[str, Any] = {
            "tracing": True,
            "stats": stats,
            "latencies": {name: hist.as_dict()
                          for name, hist in sorted(merged.items())},
            "histograms": {name: hist.snapshot()
                           for name, hist in sorted(merged.items())},
            "shards": shard_reports,  # deprecated: unmerged broadcast
        }
        if self.tracer.enabled and self.recorder is not None:
            report["router"] = {"stats": self.tracer.stats(),
                                "recorder": self.recorder.dump()}
        return report

    def health_report(self) -> dict[str, Any]:
        """Per-shard readiness gauges rolled up (M16): each shard's
        :meth:`Provider.health_report` (journal lag, pool occupancy,
        plan-cache hit ratio, audit drops) under the worst state."""
        shard_reports = self._engine.broadcast("health_report")
        return {
            "state": ("degraded" if any(r["state"] != "ok"
                                        for r in shard_reports) else "ok"),
            "shards": shard_reports,
            "router": {"engine": self.engine_name,
                       "routed": list(self.routed),
                       "tokens_tracked": len(self._token_shard)},
        }

    def stats(self) -> dict[str, Any]:
        return {
            "shards": self.n_shards,
            "engine": self.engine_name,
            "routed": list(self.routed),
            "tokens_tracked": len(self._token_shard),
        }

    def shutdown(self) -> None:
        """Stop workers (threads joined, forked children reaped).
        Idempotent; serial deployments are a no-op."""
        self._engine.shutdown()

    def __enter__(self) -> "ShardedProvider":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedProvider({self.name!r}, shards={self.n_shards}, "
                f"engine={self.engine_name!r})")
