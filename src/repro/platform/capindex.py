"""Incremental launch-capability index: O(1) app launches.

:meth:`Provider.launch_caps` assembles the capability set an app
instance starts with.  Computed naively that is a scan over **every
account** (read caps for everyone who enabled the app) plus every
group — per request.  This index memoizes the finished
:class:`~repro.labels.CapabilitySet` per ``(app, viewer)`` pair and
invalidates on exactly the events that can change it:

* ``enable_app`` / ``disable_app`` — that app's entries only;
* ``delete_account`` — the departing user's enabled apps;
* group create / roster change — everything (group caps can reach any
  app any member enabled);
* snapshot restore — everything.

Correctness by construction: a miss calls the provider's legacy scan
(:meth:`Provider._scan_launch_caps`), so fast-path and slow-path
results are the same object — :class:`~repro.labels.CapabilitySet`
instances are interned — and a cold cache degenerates to exactly the
old behavior.  Memoizing the *finished set* matters more than it looks:
even with per-account caps precomputed, merging N capabilities into a
``CapabilitySet`` is O(N) (interning hashes the whole membership), so
the only way a launch gets cheaper than O(enabled users) is to not
rebuild the set at all.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..labels import CapabilitySet

if TYPE_CHECKING:  # pragma: no cover
    from .provider import Provider
    from .registry import AppModule


class LaunchCapIndex:
    """Per-(app, viewer) launch-capability memo with event invalidation."""

    def __init__(self, provider: "Provider", enabled: bool = True,
                 max_entries: int = 8192) -> None:
        self.provider = provider
        self.enabled = enabled
        self._max_entries = max_entries
        self._memo: dict[tuple[str, Optional[str]], CapabilitySet] = {}
        self._stats = {"hits": 0, "misses": 0, "invalidations": 0}
        #: Monotonic generation, bumped on *every* invalidation event
        #: (even when the memo held nothing for it).  Derived caches —
        #: the :mod:`repro.platform.plans` PlanCache — stamp the epoch
        #: at build time and treat any bump as "recompile".
        self.epoch = 0

    def lookup(self, app: "AppModule",
               viewer: Optional[str]) -> CapabilitySet:
        if not self.enabled:
            return self.provider._scan_launch_caps(app, viewer)
        key = (app.name, viewer)
        cached = self._memo.get(key)
        if cached is not None:
            self._stats["hits"] += 1
            return cached
        self._stats["misses"] += 1
        caps = self.provider._scan_launch_caps(app, viewer)
        if len(self._memo) >= self._max_entries:
            self._memo.clear()
        self._memo[key] = caps
        return caps

    # -- invalidation ---------------------------------------------------

    def invalidate_app(self, app_name: str) -> None:
        """Drop every viewer's entry for one app (enable/disable)."""
        self.epoch += 1
        doomed = [k for k in self._memo if k[0] == app_name]
        for k in doomed:
            del self._memo[k]
        if doomed:
            self._stats["invalidations"] += 1

    def invalidate_all(self, reason: str = "") -> None:
        self.epoch += 1
        if self._memo:
            self._memo.clear()
            self._stats["invalidations"] += 1

    def stats(self) -> dict[str, int]:
        stats = dict(self._stats)
        stats["entries"] = len(self._memo)
        stats["epoch"] = self.epoch
        return stats
