"""Provider persistence: snapshot and restore a whole deployment.

What is durable and what is not mirrors a real deployment:

* **durable** — the tag registry, every account (tags, enablements,
  write grants, module preferences, profile, policies, pins), every
  *builtin* declassifier grant (name + config), the labeled filesystem
  and store, endorsements, adoption and usage ledgers;
* **not durable, by design** — live sessions (users re-authenticate
  after a restart), kernel processes (all request-scoped), the audit
  log (a real provider archives it out of band), and **code**: handler
  objects cannot be serialized, so the operator re-registers the app
  catalog on boot — exactly like reinstalling binaries on a rebuilt
  server — and ``restore_provider`` checks that every app users had
  enabled is present again;
* **dropped with a record** — grants of non-builtin declassifiers
  whose config is not JSON-serializable (e.g. a ``ViewerPredicate``
  closure): they are listed in the returned report so the provider can
  ask those users to re-grant, rather than silently widening or
  narrowing anyone's policy.
"""

from __future__ import annotations

import copy
import json
from contextlib import nullcontext
from typing import Any, Callable, Iterable

from ..core.snapshot import Snapshotable
from ..db import restore_store
from ..declassify import BUILTINS
from ..fs import restore_fs
from ..kernel import Kernel
from ..labels import CapabilitySet, Label, TagRegistry
from .accounts import UserAccount
from .config import ProviderConfig
from .errors import PlatformError
from .provider import Provider
from .registry import AppModule


def account_dict(a: UserAccount) -> dict[str, Any]:
    """The durable form of one account.  Every mapping is key-sorted so
    identical logical states serialize to identical bytes regardless of
    the mutation order that produced them."""
    return {
        "username": a.username,
        "data_tag_id": a.data_tag.tag_id,
        "write_tag_id": a.write_tag.tag_id,
        "enabled_apps": sorted(a.enabled_apps),
        "writable_apps": sorted(a.writable_apps),
        "module_preferences": dict(sorted(a.module_preferences.items())),
        "profile": dict(sorted(a.profile.items())),
        "require_endorsed": a.require_endorsed,
        "email_address": a.email_address,
        "js_policy": a.js_policy,
        "audited_versions": dict(sorted(a.audited_versions.items())),
    }


def group_dict(g) -> dict[str, Any]:
    return {
        "name": g.name,
        "owner": g.owner,
        "data_tag_id": g.data_tag.tag_id,
        "write_tag_id": g.write_tag.tag_id,
        "members": sorted(g.members),
        "writers": sorted(g.writers),
    }


def _grant_key(record: dict[str, Any]) -> tuple:
    return (record["owner"], record["tag_id"], record["declassifier"],
            json.dumps(record["config"], sort_keys=True))


def sort_grants(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Deterministic grant order: grant-list bytes depend only on the
    set of grants, not on the insertion/revocation history (and the
    incremental delta-merge path can regroup per owner and still land
    on the same order as a full snapshot)."""
    return sorted(records, key=_grant_key)


def sort_skipped(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    return sorted(records,
                  key=lambda r: (r["owner"], r["declassifier"]))


def snapshot_provider(provider: Provider,
                      incremental: bool = False) -> dict[str, Any]:
    """Serialize everything durable.  JSON-compatible by construction
    (verified by a round-trip in the tests).

    With ``incremental=True`` (and the provider's durability manager
    enabled) this returns an O(dirty) **delta** against the last full
    checkpoint — or a fresh full snapshot when the journal crossed its
    compaction threshold.  Feed the pair through :func:`merge_delta` to
    recover the full form; a provider without a manager falls back to
    a full snapshot.
    """
    if incremental and provider._durability is not None:
        return provider._durability.emit_snapshot()
    accounts = [account_dict(provider.account(u))
                for u in provider.usernames()]

    grants = []
    skipped_grants = []
    for g in provider.declass._grants:
        record = provider.declass.grant_record(g)
        if record is None:
            skipped_grants.append({"owner": g.owner,
                                   "declassifier": g.declassifier.name})
        else:
            grants.append(record)

    groups = [group_dict(provider.groups.get(name))
              for name in sorted(provider.groups._groups)]

    # The storage subsystems and the tag registry all implement
    # Snapshotable; the provider's composite snapshot is their
    # snapshots plus the platform-level state.
    registry: Snapshotable = provider.kernel.tags
    fs: Snapshotable = provider.fs
    db: Snapshotable = provider.db
    return {
        "name": provider.name,
        "registry": registry.snapshot(),
        "provider_write_tag_id": provider._provider_write.tag_id,
        "accounts": accounts,
        "groups": groups,
        "grants": sort_grants(grants),
        "skipped_grants": sort_skipped(skipped_grants),
        "endorsements": sorted(provider.endorsements.endorsed),
        "adoptions": list(provider.adoptions),
        "usage_edges": list(provider.usage_edges),
        "declass_clock": provider.declass.now,
        "fs": fs.snapshot(),
        "db": db.snapshot(),
    }


def merge_delta(base: dict[str, Any],
                delta: dict[str, Any]) -> dict[str, Any]:
    """Fold an incremental delta into its base full snapshot.

    Deltas are cumulative since the base checkpoint, so the operator
    retains exactly two artifacts (base + latest delta); the result is
    canonically byte-identical to the full snapshot the provider would
    have emitted at the same moment.  Passing a full snapshot as
    ``delta`` (the compaction case) returns it unchanged.
    """
    if delta.get("kind") != "delta":
        return copy.deepcopy(delta)
    from ..db.persist import merge_store_delta
    from ..fs.persist import merge_fs_delta
    base = copy.deepcopy(base)

    accounts = {a["username"]: a for a in base["accounts"]}
    for username in delta.get("removed_accounts", ()):
        accounts.pop(username, None)
    for a in delta.get("accounts", ()):
        accounts[a["username"]] = a

    groups = {g["name"]: g for g in base["groups"]}
    for g in delta.get("groups", ()):
        groups[g["name"]] = g

    grants_by_owner: dict[str, list[dict[str, Any]]] = {}
    for r in base["grants"]:
        grants_by_owner.setdefault(r["owner"], []).append(r)
    skipped_by_owner: dict[str, list[dict[str, Any]]] = {}
    for r in base.get("skipped_grants", ()):
        skipped_by_owner.setdefault(r["owner"], []).append(r)
    # A dirty owner's slice is replaced wholesale (the delta lists the
    # owner's *entire* current grant set, possibly empty after revokes).
    for owner, rs in delta.get("grants_by_owner", {}).items():
        grants_by_owner[owner] = list(rs)
    for owner, rs in delta.get("skipped_by_owner", {}).items():
        skipped_by_owner[owner] = list(rs)

    registry = _merge_registry(base["registry"], delta["registry"])
    return {
        "name": delta["name"],
        "registry": registry,
        "provider_write_tag_id": delta["provider_write_tag_id"],
        "accounts": [accounts[u] for u in sorted(accounts)],
        "groups": [groups[n] for n in sorted(groups)],
        "grants": sort_grants(
            [r for rs in grants_by_owner.values() for r in rs]),
        "skipped_grants": sort_skipped(
            [r for rs in skipped_by_owner.values() for r in rs]),
        "endorsements": (list(delta["endorsements"])
                         if "endorsements" in delta
                         else list(base["endorsements"])),
        "adoptions": ([list(x) for x in base["adoptions"]]
                      + [list(x) for x in delta.get("adoptions_tail", ())]),
        "usage_edges": ([list(x) for x in base["usage_edges"]]
                        + [list(x) for x in delta.get("usage_tail", ())]),
        "declass_clock": delta["declass_clock"],
        "fs": merge_fs_delta(base["fs"], delta["fs"]),
        "db": merge_store_delta(base["db"], delta["db"]),
    }


def _merge_registry(base: dict[str, Any],
                    delta: dict[str, Any]) -> dict[str, Any]:
    # tag ids are monotone, so base and delta tag lists are disjoint
    return {
        "namespace": delta["namespace"],
        "next_id": delta["next_id"],
        "tags": sorted(base["tags"] + delta["tags"],
                       key=lambda t: t["tag_id"]),
        "foreign": sorted(base["foreign"] + delta["foreign"],
                          key=lambda f: (f["namespace"], f["foreign_id"])),
    }


def restore_provider(state: dict[str, Any],
                     app_catalog: Iterable[AppModule] = (),
                     resources=None,
                     config: "ProviderConfig | None" = None
                     ) -> tuple[Provider, dict[str, Any]]:
    """Rebuild a provider from a snapshot.

    ``app_catalog`` is the code the operator reinstalls.  ``config``
    selects the rebuilt provider's :class:`ProviderConfig` (defaults
    apply when omitted, exactly as ``Provider()`` would).  Returns the
    provider plus a report: declassifier grants that could not be
    restored and enabled apps missing from the reinstalled catalog.
    """
    provider = Provider(name=state["name"], resources=resources,
                        config=config)
    # Installing cold-storage state is not a new mutation: journaling
    # stays off until the post-restore checkpoint re-bases the journal.
    manager = provider._durability
    guard = manager.suspended() if manager is not None else nullcontext()
    with guard:
        provider, report = _restore_into(provider, state, app_catalog)
    if manager is not None:
        # restore replaced the registry/fs/db objects wholesale; point
        # the hooks at the new ones, then make the restored state the
        # journal's base.
        manager.wire()
        manager.checkpoint()
    return provider, report


def _restore_into(provider: Provider, state: dict[str, Any],
                  app_catalog: Iterable[AppModule]
                  ) -> tuple[Provider, dict[str, Any]]:
    # Replace the freshly-minted registry with the durable one and
    # repair the provider's own bootstrap references.
    provider.kernel.tags = TagRegistry.import_state(state["registry"])
    # Tag identity was just rewired underneath the kernel: drop every
    # cached flow verdict, pure memos included.
    provider.kernel.flow_cache.invalidate_all(reason="registry-restore")
    pw_tag = provider.kernel.tags.lookup(state["provider_write_tag_id"])
    provider._provider_write = pw_tag
    svc = provider._account_service
    svc.caps = CapabilitySet.owning(pw_tag)
    svc.ilabel = Label([pw_tag])

    # Storage comes back verbatim (including /users and home dirs),
    # on the same engine the fresh provider was configured with.
    provider.fs = restore_fs(provider.kernel, state["fs"],
                             grouped_walk=provider.partitioned_store)
    provider.db = restore_store(provider.kernel, state["db"],
                                partitioned=provider.partitioned_store)

    # Code reinstall.
    for module in app_catalog:
        provider.register_app(module)

    report: dict[str, Any] = {"unrestored_grants":
                              list(state.get("skipped_grants", [])),
                              "missing_apps": []}

    # Accounts: credentials are re-registered with a placeholder that
    # forces a password reset in a real deployment; here users simply
    # re-register their password via the sessions API.
    for ad in state["accounts"]:
        account = UserAccount(
            username=ad["username"],
            data_tag=provider.kernel.tags.lookup(ad["data_tag_id"]),
            write_tag=provider.kernel.tags.lookup(ad["write_tag_id"]),
            enabled_apps=set(ad["enabled_apps"]),
            writable_apps=set(ad["writable_apps"]),
            module_preferences=dict(ad["module_preferences"]),
            profile=dict(ad["profile"]),
            require_endorsed=ad["require_endorsed"],
            email_address=ad["email_address"],
            js_policy=ad["js_policy"],
            audited_versions=dict(ad["audited_versions"]))
        provider._accounts[account.username] = account
        provider.email.register_address(account.email_address,
                                        owner=account.username)
        for app in sorted(account.enabled_apps):
            if app not in provider.apps:
                report["missing_apps"].append(
                    {"username": account.username, "app": app})

    # Policy grants (builtins only; the rest are in the report).
    for gd in state["grants"]:
        cls = BUILTINS[gd["declassifier"]]
        tag = provider.kernel.tags.lookup(gd["tag_id"])
        provider.declass.grant(gd["owner"], tag, cls(gd["config"]))

    # Group spaces: rebuild rosters and rebind each group's policy to
    # its (already restored) roster-following grant so later roster
    # edits keep steering the live declassifier.
    from .groups import GroupSpace
    for gd in state.get("groups", []):
        group = GroupSpace(
            name=gd["name"], owner=gd["owner"],
            data_tag=provider.kernel.tags.lookup(gd["data_tag_id"]),
            write_tag=provider.kernel.tags.lookup(gd["write_tag_id"]),
            members=set(gd["members"]), writers=set(gd["writers"]))
        for grant in provider.declass.grants_for(group.owner):
            if grant.tag == group.data_tag \
                    and grant.declassifier.name == "group":
                group.policy = grant.declassifier
                break
        else:
            from ..declassify import Group as GroupPolicy
            group.policy = GroupPolicy({"members": sorted(group.members)})
            provider.declass.grant(group.owner, group.data_tag,
                                   group.policy)
        provider.groups._groups[group.name] = group
    # accounts and groups were installed behind the index's back
    provider.capindex.invalidate_all("restore")
    provider.declass.invalidate_authority("restore")

    for name in state.get("endorsements", []):
        if name in provider.apps:
            provider.endorsements.endorse(name, endorser="restored")
    provider.adoptions = [tuple(x) for x in state.get("adoptions", [])]
    provider.usage_edges = [tuple(x) for x in state.get("usage_edges", [])]
    provider.declass.now = state.get("declass_clock", 0.0)
    return provider, report


def set_password(provider: Provider, username: str, password: str) -> None:
    """Post-restore credential bootstrap (the 'password reset' path)."""
    if username not in provider._accounts:
        raise PlatformError(f"no account {username!r}")
    if provider.sessions.has_user(username):
        raise PlatformError(f"{username!r} already has credentials")
    provider.sessions.register(username, password)
