"""The debugging service: crash reports that cannot leak user data.

§3.5: "If the platform were to send core dumps to developers, it could
wrongly expose users' data to developers.  Yet developers need to get
some information when their applications malfunction."

The resolution implemented here: a :class:`CrashReport` carries only
*code-shaped* facts — exception class name, the frame locations inside
the developer's own handler (file, line, function), and a counter —
and **never** the exception message, local variables, or request
parameters, all of which may embed user data.  Reports are keyed by
developer; each developer sees only their own apps' crashes.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from typing import Optional

from .registry import AppModule

_report_ids = itertools.count(1)


@dataclass(frozen=True)
class CrashReport:
    """One sanitized crash record."""

    report_id: int
    app_name: str
    developer: str
    exception_type: str
    #: (filename, line, function) frames, innermost last.
    frames: tuple[tuple[str, int, str], ...]

    def location(self) -> str:
        if not self.frames:
            return "<unknown>"
        filename, line, func = self.frames[-1]
        return f"{filename}:{line} in {func}"


@dataclass
class DebugService:
    """Collects and serves sanitized crash reports."""

    reports: list[CrashReport] = field(default_factory=list)

    def record_crash(self, app: AppModule, exc: BaseException
                     ) -> CrashReport:
        """Build a report from a live exception, keeping only code
        locations.  The exception *message* is deliberately dropped —
        it can embed user data (e.g. ``KeyError: 'bobs-secret-key'``).
        """
        frames = tuple(
            (frame.filename.rsplit("/", 1)[-1], frame.lineno or 0,
             frame.name)
            for frame in traceback.extract_tb(exc.__traceback__))
        report = CrashReport(
            report_id=next(_report_ids),
            app_name=app.name,
            developer=app.developer,
            exception_type=type(exc).__name__,
            frames=frames)
        self.reports.append(report)
        return report

    def reports_for(self, developer: str,
                    app_name: Optional[str] = None) -> list[CrashReport]:
        """A developer's own crash feed (never anyone else's)."""
        return [r for r in self.reports
                if r.developer == developer
                and (app_name is None or r.app_name == app_name)]

    def crash_count(self, app_name: str) -> int:
        return sum(1 for r in self.reports if r.app_name == app_name)
