"""Compiled request plans: the M12 dispatch fast path.

The hot request is fully memoized by M8–M11 — the LaunchCapIndex, the
authority memo, the flow cache's subject verdicts and the partition
verdicts each answer in O(1) — but the pipeline still *interprets* its
way through them: resolve the app, hash (app, viewer) into the cap
index, rebuild the pool key, batch partition verdicts through a
pid-keyed cache that a tainted-and-exited process misses every request,
then re-derive the viewer's export authority.  A
:class:`RequestPlan` compiles all of that, once per (app, viewer)
pair, into one record the dispatch loop reads field by field:

* the resolved :class:`~repro.platform.registry.AppModule`;
* the launch :class:`~repro.labels.CapabilitySet` and the finished
  process-pool checkout key;
* value-keyed partition read verdicts — keyed by the *label state*
  ``(slabel, ilabel, caps)`` instead of the pid, so fresh processes
  (the tainted-read steady state) reuse them across requests;
* the viewer's precomputed export authority and the egress audit
  detail string;
* whether gateway admission is statically allowed (no rate limit).

Validity is epoch-guarded by the exact invalidation hooks the four
memo layers already fire: :class:`LaunchCapIndex.epoch` covers
enable/disable/delete-account/group events/restore,
``DeclassificationService.authority_epoch`` covers grant/revoke/config
updates (befriend/unfriend), and ``Registry.epoch`` covers uploads and
forks that re-point ``name`` resolution.  A plan whose stamps disagree
with any of the three is recompiled on next use — there is no
invalidation callback to forget.

Plans only ever replace *pure recomputation*; every observable —
process spawn/exit, label changes, resource charges, audit records —
still happens through the ordinary kernel paths, which is what lets
``tests/platform/test_plan_differential.py`` assert byte-identical
responses and audit streams against the unplanned plane.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from ..labels import CapabilitySet, Label
from ..labels.flow import can_read

if TYPE_CHECKING:  # pragma: no cover
    from .accounts import UserAccount
    from .provider import Provider
    from .registry import AppModule

#: Bounds on the lazily-grown verdict tables: label *states* a process
#: can be in while running one app (untainted + one per author read),
#: and partitions per state.  Overflow clears — plans are caches.
_MAX_STATES = 64
_MAX_VERDICTS = 4096


class RequestPlan:
    """Everything the dispatch loop needs for one (app, viewer) pair."""

    __slots__ = ("app_ref", "viewer", "app", "account", "caps",
                 "process_name", "pool_key", "authority", "allow_detail",
                 "admit_static", "cap_epoch", "auth_epoch", "reg_epoch",
                 "_verdicts", "_slot_rows", "_slot_pkeys", "_row_memo")

    def __init__(self, app_ref: str, viewer: Optional[str],
                 app: "AppModule", account: "Optional[UserAccount]",
                 caps: CapabilitySet, authority: Optional[CapabilitySet],
                 admit_static: bool, cap_epoch: int, auth_epoch: int,
                 reg_epoch: int) -> None:
        self.app_ref = app_ref
        self.viewer = viewer
        self.app = app
        self.account = account
        self.caps = caps
        self.process_name = f"app:{app.name}"
        #: The finished pool-checkout key (apps launch unlabeled; taint
        #: is acquired per request, never at launch).
        self.pool_key = (self.process_name, Label.EMPTY, Label.EMPTY, caps)
        #: Precomputed export authority, or None when any uncacheable
        #: (time-dependent) declassifier grant exists — then egress
        #: falls back to the live oracle.
        self.authority = authority
        self.allow_detail = f"allow export to {viewer or 'anonymous'}"
        #: True iff the gateway had no rate limit at compile time, i.e.
        #: admit() is a constant True with zero side effects.
        self.admit_static = admit_static
        self.cap_epoch = cap_epoch
        self.auth_epoch = auth_epoch
        self.reg_epoch = reg_epoch
        #: (slabel, ilabel, caps) -> {(row_slabel, row_ilabel): bool}.
        self._verdicts: dict[tuple, dict[tuple, bool]] = {}
        #: Array-backed variant (M14): (slabel, ilabel, caps) -> dense
        #: verdict list indexed by the store's small-int partition slot.
        self._slot_rows: dict[tuple, list] = {}
        #: slot -> partition key, maintained on miss so describe() can
        #: render the dense rows the same way as the dict tables.
        self._slot_pkeys: dict[int, tuple] = {}
        #: Last (state, slots-list, row) served by read_verdict_row —
        #: the steady state repeats one (state, where) pair per request.
        self._row_memo: Optional[tuple] = None

    # -- validity -------------------------------------------------------

    def is_current(self, provider: "Provider") -> bool:
        return (self.cap_epoch == provider.capindex.epoch
                and self.auth_epoch == provider.declass.authority_epoch
                and self.reg_epoch == provider.apps.epoch)

    # -- partition verdicts --------------------------------------------

    def read_verdicts(self, process: Any,
                      pkeys: "dict | list") -> dict[tuple, bool]:
        """Read verdicts for the given partition keys, keyed by the
        process's *label state* rather than its pid.

        ``can_read`` is a pure function of (object labels, subject
        labels, subject caps); with every participant interned, the
        verdict for a state is a theorem that can never go stale while
        the tag namespace lives (a registry restore rewires tag
        identity, but it also bumps the cap-index epoch, which retires
        this whole plan).  That makes the table safe to share across
        the fresh processes that a tainted request path spawns every
        request — exactly the reuse the pid-keyed flow cache cannot do.
        """
        slabel = process.slabel
        ilabel = process.ilabel
        caps = process.caps
        state = (slabel, ilabel, caps)
        tables = self._verdicts
        table = tables.get(state)
        if table is None:
            if len(tables) >= _MAX_STATES:
                tables.clear()
            table = tables[state] = {}
        out: dict[tuple, bool] = {}
        for pkey in pkeys:
            v = table.get(pkey)
            if v is None:
                if len(table) >= _MAX_VERDICTS:
                    table.clear()
                v = table[pkey] = can_read(pkey[0], pkey[1],
                                           slabel, ilabel, caps)
            out[pkey] = v
        return out

    def read_verdict_row(self, process: Any, pkeys: list,
                         slots: list) -> list:
        """Dense-list verdicts for array-backed partition scans (M14).

        ``slots[i]`` is the store-assigned small-int slot of partition
        ``pkeys[i]``; the returned list answers ``row[slots[i]]`` with
        the same pure ``can_read`` verdict :meth:`read_verdicts` would
        give, but the scan inner loop indexes a list instead of probing
        a dict.  The caching rationale (interned label states, epoch
        retirement via the plan itself) is identical.

        The single-entry memo keys on the *identity* of the ``slots``
        list: the store memoizes the slot arrays per where-signature
        and rebuilds them on any membership change, so the same list
        object guarantees the same slots — and a row already verified
        to cover them can be returned without the per-slot walk.
        """
        slabel = process.slabel
        ilabel = process.ilabel
        caps = process.caps
        state = (slabel, ilabel, caps)
        memo = self._row_memo
        if memo is not None and memo[1] is slots and memo[0] == state:
            return memo[2]
        rows = self._slot_rows
        row = rows.get(state)
        if row is None:
            if len(rows) >= _MAX_STATES:
                rows.clear()
            row = rows[state] = []
        slot_pkeys = self._slot_pkeys
        for i, slot in enumerate(slots):
            if slot >= len(row):
                row.extend([None] * (slot + 1 - len(row)))
            if row[slot] is None:
                pkey = pkeys[i]
                row[slot] = can_read(pkey[0], pkey[1],
                                     slabel, ilabel, caps)
                slot_pkeys[slot] = pkey
        self._row_memo = (state, slots, row)
        return row

    # -- inspection (Provider.explain / the analysis CLI) --------------

    def describe(self) -> dict[str, Any]:
        """A serializable rendering of the compiled plan."""
        verdicts = []
        merged: dict[tuple, dict[tuple, bool]] = {}
        for state, table in self._verdicts.items():
            merged.setdefault(state, {}).update(table)
        for state, row in self._slot_rows.items():
            table = merged.setdefault(state, {})
            for slot, allowed in enumerate(row):
                if allowed is not None:
                    table[self._slot_pkeys[slot]] = allowed
        for state, table in merged.items():
            verdicts.append({
                "subject": {"slabel": repr(state[0]),
                            "ilabel": repr(state[1]),
                            "caps": len(state[2])},
                "partitions": [
                    {"slabel": repr(pkey[0]), "ilabel": repr(pkey[1]),
                     "readable": allowed}
                    for pkey, allowed in sorted(
                        table.items(), key=lambda kv: repr(kv[0]))],
            })
        return {
            "app": {"name": self.app.name, "version": self.app.version,
                    "developer": self.app.developer},
            "viewer": self.viewer,
            "process_name": self.process_name,
            "launch_caps": sorted(str(c) for c in self.caps),
            "pool_key": {"name": self.pool_key[0],
                         "slabel": repr(self.pool_key[1]),
                         "ilabel": repr(self.pool_key[2]),
                         "caps": len(self.pool_key[3])},
            "egress": {
                "authority": (sorted(str(c) for c in self.authority)
                              if self.authority is not None else None),
                "precomputed": self.authority is not None,
                "allow_detail": self.allow_detail,
            },
            "admission": {"static": self.admit_static},
            "epochs": {"capindex": self.cap_epoch,
                       "authority": self.auth_epoch,
                       "registry": self.reg_epoch},
            "partition_verdicts": verdicts,
        }


class PlanCache:
    """Per-(app_ref, viewer) compiled plans with epoch validity.

    Lookups are one dict probe plus three integer comparisons; a miss
    (cold pair or stale stamps) compiles a fresh plan through the same
    provider services the unplanned path uses, so a plan is always the
    fixed point of the interpretation it replaces.
    """

    def __init__(self, provider: "Provider", enabled: bool = False,
                 max_entries: int = 4096) -> None:
        self.provider = provider
        self.enabled = enabled
        self._max_entries = max_entries
        self._plans: dict[tuple[str, Optional[str]], RequestPlan] = {}
        self._stats = {"hits": 0, "misses": 0, "invalidated": 0,
                       "bypasses": 0}

    def lookup(self, app_ref: str,
               viewer: Optional[str]) -> Optional[RequestPlan]:
        """The plan for (app_ref, viewer), or None when this request
        must take the generic path.

        Bypasses (None) happen when the viewer's account carries
        per-request policy a plan cannot freeze: an integrity policy
        (``require_endorsed``) or audited version pins — neither bumps
        an epoch when edited, so they are checked live and excluded.
        Raises the same :class:`~repro.platform.errors.NoSuchApp` the
        generic path would for an unknown ref.
        """
        provider = self.provider
        key = (app_ref, viewer)
        plan = self._plans.get(key)
        if plan is not None and plan.is_current(provider):
            account = plan.account
            if account is not None and (account.require_endorsed
                                        or account.audited_versions):
                self._stats["bypasses"] += 1
                return None
            self._stats["hits"] += 1
            return plan
        if plan is not None:
            self._stats["invalidated"] += 1
        plan = self._compile(app_ref, viewer)
        if plan is None:
            self._stats["bypasses"] += 1
            return None
        self._stats["misses"] += 1
        if len(self._plans) >= self._max_entries:
            self._plans.clear()
        self._plans[key] = plan
        return plan

    def _compile(self, app_ref: str,
                 viewer: Optional[str]) -> Optional[RequestPlan]:
        p = self.provider
        # Stamp epochs *before* reading any state: a concurrent-looking
        # invalidation between reads then simply retires the plan.
        cap_epoch = p.capindex.epoch
        auth_epoch = p.declass.authority_epoch
        reg_epoch = p.apps.epoch
        app = p.apps.get(app_ref)  # NoSuchApp propagates, as unplanned
        account = p._accounts.get(viewer) if viewer is not None else None
        if account is not None and (account.require_endorsed
                                    or account.audited_versions):
            return None
        caps = p.launch_caps(app, viewer)
        authority = None
        if not p.declass._uncacheable:
            authority = p._authority_for(viewer)
        admit_static = p.gateway.rate_limit is None
        return RequestPlan(app_ref, viewer, app, account, caps, authority,
                           admit_static, cap_epoch, auth_epoch, reg_epoch)

    def invalidate_all(self, reason: str = "") -> None:
        """Drop every compiled plan (tests; epochs already make stale
        plans unreachable, so this is hygiene, not correctness)."""
        if self._plans:
            self._plans.clear()
            self._stats["invalidated"] += 1

    def stats(self) -> dict[str, int]:
        stats = dict(self._stats)
        stats["enabled"] = self.enabled
        stats["entries"] = len(self._plans)
        return stats
