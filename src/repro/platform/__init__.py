"""The W5 meta-application: provider, accounts, registries, app launch."""

from .accounts import UserAccount
from .config import ProviderConfig, W5DeprecationWarning
from .context import AppContext, AppHandler
from .debug import CrashReport, DebugService
from .endorsement import EndorsementService
from .errors import (AppCrashed, NoSuchApp, NoSuchUser, NotAuthorized,
                     PlatformError)
from .durability import DurabilityManager, recover_provider
from .groups import GroupService, GroupSpace
from .inspect import Explanation, PolicyInspector
from .persist import (merge_delta, restore_provider, set_password,
                      snapshot_provider)
from .plans import PlanCache, RequestPlan
from .provider import Provider
from .registry import APP, DECLASSIFIER, MODULE, AppModule, Registry
from .shards import MergedAuditView, ShardedProvider, ShardMap

__all__ = [
    "UserAccount",
    "ProviderConfig", "W5DeprecationWarning",
    "PlanCache", "RequestPlan",
    "AppContext", "AppHandler",
    "CrashReport", "DebugService", "EndorsementService",
    "AppCrashed", "NoSuchApp", "NoSuchUser", "NotAuthorized",
    "PlatformError",
    "DurabilityManager", "recover_provider",
    "GroupService", "GroupSpace",
    "Explanation", "PolicyInspector",
    "merge_delta", "restore_provider", "set_password", "snapshot_provider",
    "Provider",
    "APP", "DECLASSIFIER", "MODULE", "AppModule", "Registry",
    "MergedAuditView", "ShardedProvider", "ShardMap",
]
