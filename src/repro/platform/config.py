"""Provider configuration: one frozen record instead of flag sprawl.

The Provider constructor accumulated five independent performance
switches over the M8–M11 milestones (``fast_request_plane``,
``recycle_processes``, ``partitioned_store``,
``incremental_persistence``, ``journal_compact_bytes``) plus the new
M12 ``request_plans`` switch.  Each is still meaningful on its own —
the differential suites toggle them individually — but callers should
not have to recite six keywords to say "fast" or "naive".

:class:`ProviderConfig` packages them as a frozen dataclass with three
named presets:

* :meth:`ProviderConfig.fast` — every acceleration on, including
  compiled request plans (M12).  What a production deployment runs.
* :meth:`ProviderConfig.naive` — everything off: the paper's semantics
  executed the slow, obviously-correct way.  The differential baseline.
* :meth:`ProviderConfig.durable` — the fast plane plus incremental
  persistence tuned for journaled restarts.

The *default* ``ProviderConfig()`` mirrors the Provider's historical
keyword defaults (fast plane on, plans off), so ``Provider()`` built
with no arguments behaves exactly as it did before this API existed.

The old Provider/W5System keywords still work but emit
:class:`W5DeprecationWarning`; a dedicated CI job runs the suite with
that warning promoted to an error so internal callers stay migrated.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any


class W5DeprecationWarning(DeprecationWarning):
    """Deprecation warnings raised by this package's own APIs.

    A subclass so CI can run ``-W error::repro.platform.config.W5DeprecationWarning``
    without promoting unrelated third-party deprecations.
    """


@dataclass(frozen=True)
class ProviderConfig:
    """Every Provider performance/durability switch in one record."""

    #: Memoized request plane (M8): LaunchCapIndex + authority memo.
    fast_request_plane: bool = True
    #: Process pool recycling (M8): reuse exited app processes.
    recycle_processes: bool = True
    #: Label-partitioned store (M9): group rows by label pair.
    partitioned_store: bool = True
    #: Write-ahead journal + O(dirty) snapshots (M10).
    incremental_persistence: bool = True
    #: Journal size (bytes) that triggers compaction into a snapshot.
    journal_compact_bytes: int = 1 << 20
    #: Compiled per-(app, viewer) request plans (M12).  Off by default:
    #: plans bypass the individual memo layers, so deployments (and
    #: tests) that introspect those layers' hit/miss counters opt in.
    request_plans: bool = False
    #: Number of provider shards (M13).  1 means the classic unsharded
    #: plane; >1 makes W5System build a
    #: :class:`~repro.platform.shards.ShardedProvider` that partitions
    #: users across that many full per-shard providers.
    shards: int = 1
    #: Shard execution engine (M13): ``"serial"`` (in-line, the
    #: deterministic baseline), ``"thread"`` (one worker thread per
    #: shard), ``"fork"`` (one forked process per shard — the engine
    #: that actually scales with cores under the GIL), or ``None`` for
    #: the default (serial at 1 shard, thread above).
    shard_engine: "str | None" = None
    #: Deferred audit-detail rendering (M14): hot call sites record an
    #: interned template + args tuple; ``detail`` is formatted on first
    #: access.  Byte-identical to eager formatting (args are interned
    #: immutables), so on by default.
    lazy_audit: bool = True
    #: Compiled label transitions (M14): memoize the capability
    #: legality of ``(from, to, caps)`` label changes behind the
    #: FlowCache generation counter.
    compiled_transitions: bool = True
    #: Batched resource charges (M14): ``charge_many`` applies one
    #: Usage lookup per request with sequential-equivalent denial
    #: ordering.
    batched_charges: bool = True
    #: Array-backed partition verdict slots (M14): planned scans index
    #: a dense verdict list by small-int partition slot instead of
    #: probing a dict per partition.
    verdict_slots: bool = True

    # -- presets --------------------------------------------------------

    @classmethod
    def fast(cls, **overrides: Any) -> "ProviderConfig":
        """All accelerations on, including compiled request plans."""
        return cls(request_plans=True, **overrides)

    @classmethod
    def sharded(cls, shards: int, **overrides: Any) -> "ProviderConfig":
        """The fast plane, partitioned across ``shards`` providers."""
        base: dict[str, Any] = dict(request_plans=True, shards=shards)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def naive(cls, **overrides: Any) -> "ProviderConfig":
        """Everything off — the differential baseline plane."""
        base = dict(fast_request_plane=False, recycle_processes=False,
                    partitioned_store=False, incremental_persistence=False,
                    request_plans=False, lazy_audit=False,
                    compiled_transitions=False, batched_charges=False,
                    verdict_slots=False)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def durable(cls, **overrides: Any) -> "ProviderConfig":
        """The fast plane with incremental persistence pinned on.

        Today this matches the defaults (plans stay opt-in); the preset
        exists so restart-heavy deployments state their intent and keep
        journaling even if a future default changes.
        """
        base = dict(incremental_persistence=True)
        base.update(overrides)
        return cls(**base)

    def replace(self, **changes: Any) -> "ProviderConfig":
        """A copy with ``changes`` applied (configs are frozen)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> dict[str, Any]:
        """Plain-dict view (used by ``Provider.explain`` and tests)."""
        return dataclasses.asdict(self)


#: Sentinel distinguishing "caller omitted the deprecated keyword" from
#: every real value (including None and False).
_UNSET: Any = object()

#: The deprecated Provider/W5System keywords and the config field each
#: maps onto.  Order matters only for warning text stability.
LEGACY_FLAGS = ("fast_request_plane", "recycle_processes",
                "partitioned_store", "incremental_persistence",
                "journal_compact_bytes", "request_plans")


def resolve_config(config: "ProviderConfig | None",
                   legacy: dict[str, Any],
                   owner: str = "Provider") -> ProviderConfig:
    """Merge deprecated keyword arguments into a ProviderConfig.

    ``legacy`` maps flag name → value-or-``_UNSET``.  Any flag actually
    supplied emits a :class:`W5DeprecationWarning` and overrides the
    corresponding config field.  Passing both a config *and* a legacy
    override is allowed (the override wins) so migrations can proceed
    one call site at a time.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if supplied:
        names = ", ".join(sorted(supplied))
        warnings.warn(
            f"{owner}({names}=...) keyword(s) are deprecated; pass "
            f"config=ProviderConfig(...) instead (see ProviderConfig "
            f"presets .fast()/.naive()/.durable())",
            W5DeprecationWarning, stacklevel=3)
    base = config if config is not None else ProviderConfig()
    if supplied:
        base = dataclasses.replace(base, **supplied)
    return base
