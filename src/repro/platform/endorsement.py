"""Integrity protection: endorsed components (§3.1).

"Integrity protection, in which Bob can authorize an application to
act on his behalf only if all of its components (such as its libraries
and configuration files) are meritorious."

The provider (or an editor it trusts) *endorses* modules after audit.
A user who opts into integrity protection
(:meth:`~repro.platform.provider.Provider.set_integrity_policy`) will
only have applications launched on her requests when the app and its
full transitive import closure — including the modules her own
preferences would swap in — are endorsed.  The check runs at launch,
before any developer code executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from .registry import AppModule, Registry


@dataclass
class EndorsementService:
    """The provider's ledger of audited ("meritorious") components."""

    endorsed: set[str] = field(default_factory=set)
    #: (module, endorser) history for provenance display.
    history: list[tuple[str, str]] = field(default_factory=list)
    #: Durability hook: ``(op, data)`` per ledger change (journal).
    on_mutate: Optional[Callable[[str, dict], None]] = None
    #: True once the ledger changed since the last full checkpoint.
    dirty: bool = field(default=False, compare=False)

    def mark_clean(self) -> None:
        self.dirty = False

    def endorse(self, module_name: str, endorser: str = "provider") -> None:
        self.endorsed.add(module_name)
        self.history.append((module_name, endorser))
        self.dirty = True
        if self.on_mutate is not None:
            self.on_mutate("endorse.add", {"module": module_name,
                                           "endorser": endorser})

    def retract(self, module_name: str) -> None:
        self.endorsed.discard(module_name)
        self.dirty = True
        if self.on_mutate is not None:
            self.on_mutate("endorse.retract", {"module": module_name})

    def is_endorsed(self, module_name: str) -> bool:
        return module_name in self.endorsed

    # ------------------------------------------------------------------

    def component_closure(self, registry: Registry, app: AppModule,
                          preferences: Mapping[str, str] = ()
                          ) -> set[str]:
        """The app plus every module it could pull in: transitive
        declared imports, widened by the user's slot preferences."""
        closure: set[str] = set()
        frontier = [app.name]
        extra = [ref.partition("@")[0]
                 for ref in dict(preferences or {}).values()]
        frontier.extend(extra)
        while frontier:
            name = frontier.pop()
            if name in closure or name not in registry:
                continue
            closure.add(name)
            frontier.extend(registry.get(name).imports)
        return closure

    def check_app(self, registry: Registry, app: AppModule,
                  preferences: Mapping[str, str] = ()
                  ) -> tuple[bool, list[str]]:
        """(ok, unendorsed components) for launching ``app``."""
        closure = self.component_closure(registry, app, preferences)
        missing = sorted(name for name in closure
                         if not self.is_endorsed(name))
        return (not missing, missing)
