"""Platform-level errors, rooted in the unified :mod:`repro.errors` tree."""

from __future__ import annotations

from ..errors import FlowDenied, NotFound, W5Error


class PlatformError(W5Error):
    """Base class for meta-application failures."""


class NoSuchUser(PlatformError, NotFound):
    """The named account does not exist."""


class NoSuchApp(PlatformError, NotFound):
    """The named application/module is not registered."""


class NotAuthorized(PlatformError, FlowDenied):
    """The acting user lacks the right to perform a platform action."""


class AppCrashed(PlatformError):
    """Developer code raised; the platform converts this to a 500
    without leaking internals (§3.5 Debugging)."""
