"""Platform-level errors."""

from __future__ import annotations


class PlatformError(Exception):
    """Base class for meta-application failures."""


class NoSuchUser(PlatformError):
    """The named account does not exist."""


class NoSuchApp(PlatformError):
    """The named application/module is not registered."""


class NotAuthorized(PlatformError):
    """The acting user lacks the right to perform a platform action."""


class AppCrashed(PlatformError):
    """Developer code raised; the platform converts this to a 500
    without leaking internals (§3.5 Debugging)."""
