"""Incremental durability: the journal manager and crash replay.

The naive operator path re-serializes *every* account, grant, file and
row on every snapshot (EXPERIMENTS.md §M7) — O(total state) per deploy,
which the ROADMAP's production-scale north star forbids.  This module
makes durability O(dirty):

* :class:`DurabilityManager` wires one ``on_mutate`` hook into every
  durable subsystem (tag registry, filesystem, store, declassification
  service, endorsement ledger) and exposes :meth:`record` for the
  platform-level mutations the provider performs itself (account
  lifecycle, enablements, group rosters, ledgers).  Each mutation
  becomes one checksummed :class:`~repro.core.journal.Journal` record.
* :meth:`emit_snapshot` returns an O(dirty) **delta** against the last
  full checkpoint — only dirty accounts/owners/groups/paths/rows are
  re-serialized — escalating to a fresh full snapshot (compaction)
  once the journal outgrows its threshold.  Deltas are *cumulative*
  since the checkpoint, so an operator needs to retain exactly two
  artifacts: the base and the latest delta
  (:func:`repro.platform.persist.merge_delta` folds them together,
  byte-identical to a full snapshot).
* :func:`recover_provider` is the crash path: restore the base, replay
  the journal's verified prefix (a torn tail is truncated, never
  guessed at), and prove nothing drifted — the differential tests
  interleave random mutations with crashes at every journal byte
  offset and compare against a full restore.

Replay runs at cold-storage trust (like ``restore_provider``): records
describe mutations the reference monitor *already approved* before the
crash, so appliers write state directly and never re-run label checks.
Journaling is suspended throughout replay — replaying must not journal.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from ..core.journal import Journal, JournalRecord, decode_payload
from ..labels import Label

if TYPE_CHECKING:  # pragma: no cover
    from .provider import Provider
    from .registry import AppModule


class DurabilityManager:
    """Owns the journal, the dirty-state epoch, and the base snapshot."""

    def __init__(self, provider: "Provider",
                 compact_threshold: int = 1 << 20) -> None:
        self.provider = provider
        self.journal = Journal(compact_threshold=compact_threshold)
        self._suspend_depth = 0
        #: The last full snapshot; every delta and every journal record
        #: is relative to this.
        self.base: Optional[dict[str, Any]] = None
        #: Positions of the append-only structures at checkpoint time
        #: (registry ids are monotone; adoption/usage ledgers only grow).
        self._base_marks = {"registry_next_id": 1, "adoptions": 0,
                            "usage": 0}
        self._stats = {"compactions": 0, "full_snapshots": 0,
                       "incremental_snapshots": 0, "replay_records": 0,
                       "torn_truncations": 0}
        self.wire()
        # The initial checkpoint: a fresh provider's bootstrap state
        # (its write tag, /users, /groups) is the first base, so the
        # journal covers every mutation of the provider's lifetime.
        self.checkpoint()

    # -- hook wiring ---------------------------------------------------

    def wire(self) -> None:
        """(Re)attach the mutation hooks.  Called again after a restore
        replaces the registry/fs/db objects underneath the provider."""
        p = self.provider
        p.kernel.tags.on_mutate = self.record
        p.fs.on_mutate = self.record
        p.db.on_mutate = self.record
        p.declass.on_mutate = self.record
        p.endorsements.on_mutate = self.record

    def record(self, op: str, data: dict[str, Any]) -> None:
        if self._suspend_depth:
            return
        self.journal.append(op, data)

    @contextmanager
    def suspended(self):
        """Journaling off (restore/replay: state installation is not a
        new mutation)."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    # -- snapshots -----------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Take a full snapshot, make it the new base, reset the
        journal, and mark every subsystem clean."""
        from .persist import snapshot_provider
        p = self.provider
        with self.suspended():
            full = snapshot_provider(p, incremental=False)
        self.base = full
        self.journal.reset()
        self._base_marks = {
            "registry_next_id": full["registry"]["next_id"],
            "adoptions": len(p.adoptions),
            "usage": len(p.usage_edges),
        }
        p.fs.mark_clean()
        p.db.mark_clean()
        p.declass.mark_clean()
        p.endorsements.mark_clean()
        p.groups.mark_clean()
        p.mark_accounts_clean()
        self._stats["full_snapshots"] += 1
        return full

    def emit_snapshot(self) -> dict[str, Any]:
        """The operator's snapshot call: an O(dirty) delta, or a fresh
        full snapshot when there is no base yet or the journal crossed
        its compaction threshold."""
        if self.base is None:
            return self.checkpoint()
        if self.journal.needs_compaction():
            self._stats["compactions"] += 1
            return self.checkpoint()
        self._stats["incremental_snapshots"] += 1
        return self.delta_snapshot()

    def delta_snapshot(self) -> dict[str, Any]:
        """Serialize only what changed since the last checkpoint."""
        from ..db.persist import snapshot_store_delta
        from ..fs.persist import snapshot_fs_delta
        from . import persist as P
        p = self.provider
        marks = self._base_marks

        grants_by_owner: dict[str, list[dict[str, Any]]] = {}
        skipped_by_owner: dict[str, list[dict[str, Any]]] = {}
        for owner in sorted(p.declass.dirty_owners()):
            kept: list[dict[str, Any]] = []
            skipped: list[dict[str, Any]] = []
            for g in p.declass.grants_for(owner):
                record = p.declass.grant_record(g)
                if record is None:
                    skipped.append({"owner": g.owner,
                                    "declassifier": g.declassifier.name})
                else:
                    kept.append(record)
            grants_by_owner[owner] = P.sort_grants(kept)
            skipped_by_owner[owner] = P.sort_skipped(skipped)

        delta: dict[str, Any] = {
            "kind": "delta",
            "name": p.name,
            "provider_write_tag_id": p._provider_write.tag_id,
            "journal_seq": self.journal.seq,
            "registry": p.kernel.tags.export_delta(
                marks["registry_next_id"]),
            "accounts": [P.account_dict(p.account(u))
                         for u in sorted(p._dirty_accounts)
                         if u in p._accounts],
            "removed_accounts": sorted(p._removed_accounts),
            "groups": [P.group_dict(p.groups.get(n))
                       for n in sorted(p.groups.dirty_groups())
                       if n in p.groups._groups],
            "grants_by_owner": grants_by_owner,
            "skipped_by_owner": skipped_by_owner,
            "adoptions_tail": [list(x) for x in
                               p.adoptions[marks["adoptions"]:]],
            "usage_tail": [list(x) for x in
                           p.usage_edges[marks["usage"]:]],
            "declass_clock": p.declass.now,
            "fs": snapshot_fs_delta(p.fs),
            "db": snapshot_store_delta(p.db),
        }
        if p.endorsements.dirty:
            delta["endorsements"] = sorted(p.endorsements.endorsed)
        return delta

    def stats(self) -> dict[str, Any]:
        return {**self.journal.stats(), **self._stats}


# ----------------------------------------------------------------------
# crash recovery: base + replay
# ----------------------------------------------------------------------

def recover_provider(base_state: dict[str, Any], journal_raw: bytes,
                     app_catalog: Iterable["AppModule"] = (),
                     resources=None, config=None
                     ) -> tuple["Provider", dict[str, Any]]:
    """Rebuild a provider from its last full snapshot plus the journal.

    The journal image may be torn (crash mid-append): its verified
    prefix is replayed, the damaged tail is dropped, and the report
    says how much and why.  The recovered provider is byte-identical
    (snapshot-wise) to ``restore_provider`` of a snapshot taken right
    after the last complete journal record — the differential tests in
    ``tests/platform/test_journal_replay.py`` hold this at every
    possible crash offset.
    """
    from .persist import restore_provider
    provider, report = restore_provider(base_state, app_catalog,
                                        resources, config=config)
    records, jreport = Journal.recover(journal_raw)
    manager = provider._durability
    unknown_ops = 0
    if manager is not None:
        with manager.suspended():
            unknown_ops = _replay(provider, records)
        manager._stats["replay_records"] += len(records)
        if jreport.truncated_bytes:
            manager._stats["torn_truncations"] += 1
    else:
        unknown_ops = _replay(provider, records)
    _finalize_replay(provider)
    if manager is not None:
        manager.wire()
        manager.checkpoint()
    report.update({
        "records_replayed": jreport.records,
        "truncated_bytes": jreport.truncated_bytes,
        "truncation_reason": jreport.truncation_reason,
        "opaque_records": jreport.opaque_records,
        "unknown_ops": unknown_ops,
    })
    return provider, report


def _finalize_replay(provider: "Provider") -> None:
    """Replay wrote state behind every cache's back; align the world."""
    import itertools
    top = max((max(t.rows, default=0)
               for t in provider.db._tables.values()), default=0)
    # Same allocator position a full restore of the post-crash snapshot
    # would compute (next_row_id = max live row id + 1), so the two
    # recovery paths assign identical ids to post-recovery inserts.
    provider.db._row_ids = itertools.count(top + 1)
    provider.kernel.flow_cache.invalidate_all(reason="journal-replay")
    provider.capindex.invalidate_all("journal-replay")
    provider.declass.invalidate_authority("journal-replay")


# -- the op dispatch table ---------------------------------------------

def _label(provider: "Provider", tag_ids: Iterable[int]) -> Label:
    lookup = provider.kernel.tags.lookup
    return Label([lookup(i) for i in tag_ids])


def _fs_parent(provider: "Provider", path: str):
    from ..fs.filesystem import split_path
    parts = split_path(path)
    node = provider.fs.root
    for part in parts[:-1]:
        node = node.entries[part]
    return node, parts[-1]


def _r_tag_create(p: "Provider", d: dict) -> None:
    p.kernel.tags.install(d["tag_id"], d["purpose"], d["kind"], d["owner"])


def _r_tag_foreign(p: "Provider", d: dict) -> None:
    p.kernel.tags.install_foreign(d["namespace"], d["foreign_id"],
                                  d["local_id"])


def _r_fs_mkdir(p: "Provider", d: dict) -> None:
    from ..fs.filesystem import Directory
    parent, leaf = _fs_parent(p, d["path"])
    parent.entries[leaf] = Directory(
        name=leaf, slabel=_label(p, d["slabel"]),
        ilabel=_label(p, d["ilabel"]), created_by=d["created_by"])
    p.fs._note_upsert(d["path"])


def _r_fs_create(p: "Provider", d: dict) -> None:
    from ..fs.filesystem import File
    parent, leaf = _fs_parent(p, d["path"])
    parent.entries[leaf] = File(
        name=leaf, slabel=_label(p, d["slabel"]),
        ilabel=_label(p, d["ilabel"]), created_by=d["created_by"],
        data=decode_payload(d["data"]))
    p.fs._note_upsert(d["path"])


def _r_fs_write(p: "Provider", d: dict) -> None:
    parent, leaf = _fs_parent(p, d["path"])
    node = parent.entries[leaf]
    node.data = decode_payload(d["data"])
    node.version += 1
    p.fs._note_upsert(d["path"])


def _r_fs_delete(p: "Provider", d: dict) -> None:
    parent, leaf = _fs_parent(p, d["path"])
    parent.entries.pop(leaf, None)
    p.fs._note_delete(d["path"])


def _r_db_create_table(p: "Provider", d: dict) -> None:
    p.db.install_table(d["name"], indexes=d["indexes"],
                       pad_scan_to=d["pad_scan_to"])


def _r_db_drop_table(p: "Provider", d: dict) -> None:
    p.db.drop_table_raw(d["name"])


def _r_db_insert(p: "Provider", d: dict) -> None:
    p.db.install_row(d["table"], d["row_id"],
                     decode_payload(d["values"]),
                     _label(p, d["slabel"]), _label(p, d["ilabel"]))


def _r_db_update(p: "Provider", d: dict) -> None:
    p.db.apply_changes(d["table"], d["rows"], decode_payload(d["changes"]))


def _r_db_remove(p: "Provider", d: dict) -> None:
    p.db.remove_rows(d["table"], d["rows"])


def _r_account_signup(p: "Provider", d: dict) -> None:
    from .accounts import UserAccount
    account = UserAccount(
        username=d["username"],
        data_tag=p.kernel.tags.lookup(d["data_tag_id"]),
        write_tag=p.kernel.tags.lookup(d["write_tag_id"]),
        email_address=d["email"])
    p._accounts[account.username] = account
    p.email.register_address(account.email_address,
                             owner=account.username)
    p._note_account(account.username)


def _r_account_delete(p: "Provider", d: dict) -> None:
    account = p._accounts.pop(d["username"], None)
    if account is not None:
        # a full restore of the post-crash snapshot has no mailbox for
        # the departed user; match it
        p.email._boxes.pop(account.email_address, None)
    p._dirty_accounts.discard(d["username"])
    p._removed_accounts.add(d["username"])


def _r_account_profile(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.profile.update(decode_payload(d["fields"]))
        p._note_account(d["username"])


def _r_account_enable(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.enabled_apps.add(d["app"])
        if d["write"]:
            account.writable_apps.add(d["app"])
        p.adoptions.append((d["username"], d["app"]))
        p._note_account(d["username"])


def _r_account_disable(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.enabled_apps.discard(d["app"])
        account.writable_apps.discard(d["app"])
        p._note_account(d["username"])


def _r_account_prefer(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.module_preferences[d["slot"]] = d["ref"]
        p._note_account(d["username"])


def _r_account_integrity(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.require_endorsed = d["require_endorsed"]
        p._note_account(d["username"])


def _r_account_pin(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.audited_versions[d["app"]] = d["version"]
        p._note_account(d["username"])


def _r_account_unpin(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.audited_versions.pop(d["app"], None)
        p._note_account(d["username"])


def _r_account_js(p: "Provider", d: dict) -> None:
    account = p._accounts.get(d["username"])
    if account is not None:
        account.js_policy = d["policy"]
        p._note_account(d["username"])


def _r_grant_add(p: "Provider", d: dict) -> None:
    from ..declassify import BUILTINS
    cls = BUILTINS[d["declassifier"]]
    tag = p.kernel.tags.lookup(d["tag_id"])
    p.declass.grant(d["owner"], tag, cls(d["config"]))


def _r_grant_skip(p: "Provider", d: dict) -> None:
    # A non-durable grant (non-builtin / non-JSON config): it could not
    # be replayed even from a full snapshot; the recovery report's
    # unrestored_grants covers the base's, and this marker keeps the
    # journal honest about the gap.
    pass


def _r_grant_revoke(p: "Provider", d: dict) -> None:
    tag = p.kernel.tags.lookup(d["tag_id"])
    p.declass.revoke(d["owner"], tag, declassifier_name=d["name"])


def _r_grant_config(p: "Provider", d: dict) -> None:
    changes = decode_payload(d["changes"])
    for g in p.declass.grants_for(d["owner"]):
        if g.tag.tag_id == d["tag_id"] \
                and g.declassifier.name == d["name"]:
            g.declassifier.update_config(**changes)
    p.declass._dirty_owners.add(d["owner"])


def _r_group_create(p: "Provider", d: dict) -> None:
    from .groups import GroupSpace
    group = GroupSpace(
        name=d["name"], owner=d["owner"],
        data_tag=p.kernel.tags.lookup(d["data_tag_id"]),
        write_tag=p.kernel.tags.lookup(d["write_tag_id"]),
        members={d["owner"]}, writers={d["owner"]})
    # bind to the roster-following grant replayed just before this
    # record (same rebinding restore_provider performs)
    for grant in p.declass.grants_for(group.owner):
        if grant.tag == group.data_tag \
                and grant.declassifier.name == "group":
            group.policy = grant.declassifier
            break
    else:
        from ..declassify import Group as GroupPolicy
        group.policy = GroupPolicy({"members": sorted(group.members)})
        p.declass.grant(group.owner, group.data_tag, group.policy)
    p.groups._groups[group.name] = group
    p.groups._dirty_groups.add(group.name)


def _r_group_member_add(p: "Provider", d: dict) -> None:
    group = p.groups._groups.get(d["name"])
    if group is not None:
        group.members.add(d["username"])
        if d["writer"]:
            group.writers.add(d["username"])
        p.groups._dirty_groups.add(d["name"])
        # the roster-following config lands via the grant.config record
        # journaled right after this one


def _r_group_member_remove(p: "Provider", d: dict) -> None:
    group = p.groups._groups.get(d["name"])
    if group is not None:
        group.members.discard(d["username"])
        group.writers.discard(d["username"])
        p.groups._dirty_groups.add(d["name"])


def _r_endorse_add(p: "Provider", d: dict) -> None:
    # same filter as restore_provider: endorsements only bind to
    # reinstalled code
    if d["module"] in p.apps:
        p.endorsements.endorse(d["module"], endorser=d["endorser"])


def _r_endorse_retract(p: "Provider", d: dict) -> None:
    p.endorsements.retract(d["module"])


def _r_ledger_usage(p: "Provider", d: dict) -> None:
    p.usage_edges.append((d["app"], d["module"]))


def _r_clock_set(p: "Provider", d: dict) -> None:
    p.declass._now = d["now"]


def _r_opaque(p: "Provider", d: dict) -> None:
    # the mutation's payload could not be journaled; its effect lives
    # only in full snapshots (Journal.recover already counted it)
    pass


_REPLAY: dict[str, Callable[["Provider", dict], None]] = {
    "tag.create": _r_tag_create,
    "tag.foreign": _r_tag_foreign,
    "fs.mkdir": _r_fs_mkdir,
    "fs.create": _r_fs_create,
    "fs.write": _r_fs_write,
    "fs.delete": _r_fs_delete,
    "db.create_table": _r_db_create_table,
    "db.drop_table": _r_db_drop_table,
    "db.insert": _r_db_insert,
    "db.update": _r_db_update,
    "db.delete": _r_db_remove,
    "db.purge": _r_db_remove,
    "account.signup": _r_account_signup,
    "account.delete": _r_account_delete,
    "account.profile": _r_account_profile,
    "account.enable": _r_account_enable,
    "account.disable": _r_account_disable,
    "account.prefer": _r_account_prefer,
    "account.integrity": _r_account_integrity,
    "account.pin": _r_account_pin,
    "account.unpin": _r_account_unpin,
    "account.js": _r_account_js,
    "grant.add": _r_grant_add,
    "grant.skip": _r_grant_skip,
    "grant.revoke": _r_grant_revoke,
    "grant.config": _r_grant_config,
    "group.create": _r_group_create,
    "group.member.add": _r_group_member_add,
    "group.member.remove": _r_group_member_remove,
    "endorse.add": _r_endorse_add,
    "endorse.retract": _r_endorse_retract,
    "ledger.usage": _r_ledger_usage,
    "clock.set": _r_clock_set,
    "journal.opaque": _r_opaque,
}


def _replay(provider: "Provider", records: Iterable[JournalRecord]) -> int:
    """Apply verified journal records in order; returns how many had
    an op this build does not know (skipped, counted — never fatal:
    an old journal must not brick a newer provider)."""
    unknown = 0
    for record in records:
        applier = _REPLAY.get(record.op)
        if applier is None:
            unknown += 1
            continue
        applier(provider, record.data)
    return unknown
