"""Application and module registry.

Developers upload software to the provider (§2).  A registry entry is
an :class:`AppModule`: a handler callable plus metadata — developer,
version, declared imports (the dependency edges §3.2's code search
ranks), and whether the source is open.

The registry supports the paper's development models directly:

* **closed source** — ``source_open=False``: the module is
  "executable but not readable"; :meth:`Registry.source_of` refuses.
* **open source + forking** — :meth:`Registry.fork` clones an open
  module under a new developer, preserving lineage, so "any developer
  — not just the application owner — can customize an existing
  application" and instantly offer it to the user pool.
* **versioning** — every (name) keeps its version history;
  :meth:`Registry.get` resolves ``name`` to the latest or
  ``name@version`` to a pinned one, so a user can say "I want version
  X.Y of that Web application, not the latest" (§2).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Optional

from .errors import NoSuchApp, NotAuthorized, PlatformError

#: Registry entry kinds.
APP = "app"          # user-facing application with URL routes
MODULE = "module"    # library imported by apps (croppers, labelers)
DECLASSIFIER = "declassifier"


@dataclass(frozen=True)
class AppModule:
    """One uploaded piece of software."""

    name: str
    developer: str
    handler: Callable[..., Any]
    kind: str = APP
    version: str = "1.0"
    description: str = ""
    source_open: bool = True
    #: Names of registry modules this one imports (dependency edges).
    imports: tuple[str, ...] = ()
    #: Name of the module this one was forked from, if any.
    forked_from: Optional[str] = None

    @property
    def qualified(self) -> str:
        """The user-visible identifier, e.g. ``devA/crop`` (§2 URLs)."""
        return f"{self.developer}/{self.name}"

    def source(self) -> str:
        """The module's source code (only meaningful if open)."""
        return inspect.getsource(self.handler)

    def loc(self) -> int:
        """Logic lines of the handler (M3 metric): non-blank,
        non-comment, docstrings excluded."""
        from ..core.loc import code_loc
        try:
            src = self.source()
        except (OSError, TypeError):
            return 0
        return code_loc(src)


class Registry:
    """Name → version history of :class:`AppModule`."""

    def __init__(self) -> None:
        self._entries: dict[str, list[AppModule]] = {}
        #: Monotonic upload generation: every successful register (and
        #: therefore fork) bumps it.  Caches that memoize the result of
        #: :meth:`get` — request plans pin a resolved module — compare
        #: this to detect that ``name`` may resolve differently now.
        self.epoch = 0

    # -- uploads ---------------------------------------------------------

    def register(self, module: AppModule) -> AppModule:
        """Upload a module.  A new version of an existing name must come
        from the same developer (forks get their own name)."""
        history = self._entries.get(module.name)
        if history and history[-1].developer != module.developer:
            raise NotAuthorized(
                f"{module.developer} cannot publish over "
                f"{history[-1].developer}'s module {module.name!r}")
        if history and any(m.version == module.version for m in history):
            raise PlatformError(
                f"{module.name} version {module.version} already published")
        self._entries.setdefault(module.name, []).append(module)
        self.epoch += 1
        return module

    def fork(self, original_name: str, new_developer: str,
             new_name: Optional[str] = None,
             handler: Optional[Callable[..., Any]] = None,
             description: str = "") -> AppModule:
        """Clone an *open-source* module under a new developer.

        The fork keeps the original handler unless a replacement is
        supplied (the customizing developer's patch).
        """
        original = self.get(original_name)
        if not original.source_open:
            raise NotAuthorized(
                f"{original_name} is closed-source and cannot be forked")
        fork = replace(
            original,
            name=new_name or f"{original.name}-{new_developer}",
            developer=new_developer,
            handler=handler or original.handler,
            version="1.0",
            description=description or f"fork of {original.qualified}",
            forked_from=original.qualified)
        return self.register(fork)

    # -- resolution --------------------------------------------------------

    def get(self, ref: str) -> AppModule:
        """Resolve ``name`` (latest) or ``name@version`` (pinned)."""
        name, _, version = ref.partition("@")
        history = self._entries.get(name)
        if not history:
            raise NoSuchApp(name)
        if not version:
            return history[-1]
        for m in history:
            if m.version == version:
                return m
        raise NoSuchApp(f"{name}@{version}")

    def versions(self, name: str) -> list[str]:
        history = self._entries.get(name)
        if not history:
            raise NoSuchApp(name)
        return [m.version for m in history]

    def source_of(self, ref: str) -> str:
        """The source of an open module; refuses for closed source."""
        module = self.get(ref)
        if not module.source_open:
            raise NotAuthorized(f"{ref} is closed-source")
        return module.source()

    # -- enumeration (feeds the §3.2 code search) ------------------------

    def __contains__(self, name: str) -> bool:
        return name.partition("@")[0] in self._entries

    def __iter__(self) -> Iterator[AppModule]:
        for history in self._entries.values():
            yield history[-1]

    def __len__(self) -> int:
        return len(self._entries)

    def by_kind(self, kind: str) -> list[AppModule]:
        return [m for m in self if m.kind == kind]

    def by_developer(self, developer: str) -> list[AppModule]:
        return [m for m in self if m.developer == developer]

    def dependency_edges(self) -> list[tuple[str, str]]:
        """(importer, imported) pairs over latest versions."""
        edges = []
        for m in self:
            for dep in m.imports:
                if dep in self:
                    edges.append((m.name, dep))
        return edges
