"""Resource containers: metering and quotas (§3.5).

"Processes must be limited to reasonable amounts of disk, network,
memory and CPU usage, lest rogue applications degrade the performance
of the W5 cluster."  The paper points at resource containers (Banga et
al., OSDI'99); this module is that idea sized to the simulator: every
kernel syscall, message, file byte and database row charges the acting
process's container, and a container over quota refuses with
:class:`~repro.kernel.errors.ResourceExhausted`.

Quotas attach at two granularities:

* per-process defaults — the backstop every spawn gets;
* per-principal overrides keyed by process-name prefix (``app:vandal``)
  — how a provider throttles one misbehaving application without
  touching the rest, demonstrated in experiment C9.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..kernel import Process, ResourceHook
from ..kernel.errors import ResourceExhausted

#: Resource kinds the kernel and stores charge.
KINDS = ("syscalls", "messages", "endpoints", "tags", "processes",
         "disk", "disk_read", "db_queries", "db_rows", "db_rows_scanned",
         "requests")

_STANDARD_KINDS = frozenset(KINDS)


class Usage:
    """Cumulative consumption for one process.

    ``__slots__``-backed per-kind attributes for the standard
    :data:`KINDS` (one attribute store instead of a dict probe per
    charge — the M14 batched-charge layer); non-standard kinds fall
    back to an on-demand dict.  :attr:`counts` remains available as a
    reconstructed mapping view for reporting.
    """

    __slots__ = KINDS + ("_extra",)

    def __init__(self) -> None:
        # unrolled (one request = one fresh Usage; a setattr loop over
        # KINDS costs more than every charge the request will make)
        self.syscalls = self.messages = self.endpoints = self.tags = \
            self.processes = self.disk = self.disk_read = \
            self.db_queries = self.db_rows = self.db_rows_scanned = \
            self.requests = 0.0
        self._extra: Optional[dict[str, float]] = None

    def get(self, kind: str) -> float:
        if kind in _STANDARD_KINDS:
            return getattr(self, kind)
        extra = self._extra
        return extra.get(kind, 0.0) if extra else 0.0

    def set(self, kind: str, value: float) -> None:
        if kind in _STANDARD_KINDS:
            setattr(self, kind, value)
        else:
            extra = self._extra
            if extra is None:
                extra = self._extra = {}
            extra[kind] = value

    def add(self, kind: str, amount: float) -> float:
        value = self.get(kind) + amount
        self.set(kind, value)
        return value

    @property
    def counts(self) -> dict[str, float]:
        out = {}
        for kind in KINDS:
            value = getattr(self, kind)
            if value:
                out[kind] = value
        if self._extra:
            out.update(self._extra)
        return out


class ResourceManager(ResourceHook):
    """A :class:`ResourceHook` with quotas and accounting.

    ``default_quotas`` maps kind → per-process ceiling (absent = ∞).
    ``overrides`` maps a process-name prefix to its own quota table;
    the longest matching prefix wins.
    """

    def __init__(self, default_quotas: Optional[Mapping[str, float]] = None,
                 overrides: Optional[Mapping[str, Mapping[str, float]]]
                 = None, fast: bool = True) -> None:
        self.default_quotas = dict(default_quotas or {})
        self.overrides = {k: dict(v) for k, v in (overrides or {}).items()}
        #: M14 batched-charges switch: with it on, an unmetered manager
        #: (no quotas anywhere — every ceiling is infinity) accumulates
        #: without resolving quotas.  Totals, denials and exceptions
        #: are unchanged in every configuration; ``fast=False`` keeps
        #: the pre-M14 resolve-then-compare arithmetic for the naive
        #: twin of the differential suite.
        self.fast = fast
        self._usage: dict[int, Usage] = {}
        self._names: dict[int, str] = {}
        #: Usage folded in from recycled activations, keyed by name
        #: (recycling resets the live counters; history is kept here).
        self._retired: dict[str, dict[str, float]] = {}
        #: Total denied charges, per kind (benchmarks read this).
        self.denials: dict[str, int] = {}

    # -- quota resolution ---------------------------------------------

    def quota_for(self, process: Process, kind: str) -> float:
        if self.overrides:
            best: Optional[Mapping[str, float]] = None
            best_len = -1
            for prefix, table in self.overrides.items():
                if process.name.startswith(prefix) and len(prefix) > best_len:
                    best, best_len = table, len(prefix)
            if best is not None and kind in best:
                return best[kind]
        return self.default_quotas.get(kind, float("inf"))

    # -- ResourceHook interface -----------------------------------------

    def charge(self, process: Process, kind: str, amount: float) -> None:
        pid = process.pid
        usage = self._usage.get(pid)
        if usage is None:
            usage = self._usage[pid] = Usage()
            self._names[pid] = process.name
        if self.fast and not self.default_quotas and not self.overrides:
            # unmetered container: the quota would resolve to infinity
            usage.set(kind, usage.get(kind) + amount)
            return
        new_total = usage.get(kind) + amount
        quota = self.quota_for(process, kind)
        if new_total > quota:
            self.denials[kind] = self.denials.get(kind, 0) + 1
            raise ResourceExhausted(
                f"{process.name}: {kind} quota ({quota:g}) exhausted")
        usage.set(kind, new_total)

    def charge_many(self, process: Process,
                    items: Iterable[tuple[str, float]]) -> None:
        """Apply several charges with one usage-record lookup.

        Sequential-equivalent: items are applied in order, the first
        over-quota item raises the same :class:`ResourceExhausted` (and
        bumps the same denial counter) a loop of :meth:`charge` calls
        would, with every earlier item already applied.
        """
        pid = process.pid
        usage = self._usage.get(pid)
        if usage is None:
            usage = self._usage[pid] = Usage()
            self._names[pid] = process.name
        if self.fast and not self.default_quotas and not self.overrides:
            # unmetered container: every quota resolves to infinity, so
            # no item can deny — accumulate without resolving quotas
            for kind, amount in items:
                usage.set(kind, usage.get(kind) + amount)
            return
        for kind, amount in items:
            new_total = usage.get(kind) + amount
            quota = self.quota_for(process, kind)
            if new_total > quota:
                self.denials[kind] = self.denials.get(kind, 0) + 1
                raise ResourceExhausted(
                    f"{process.name}: {kind} quota ({quota:g}) exhausted")
            usage.set(kind, new_total)

    def on_exit(self, process: Process) -> None:
        # Usage history is retained for reporting; nothing to free in
        # a simulator.  Subclasses pooling real resources would release.
        return

    def on_recycle(self, process: Process) -> None:
        """Reset the process's live budget for its next activation.

        Quotas are per-activation (one request = one fresh budget, the
        same arithmetic an unpooled kernel gets from fresh processes);
        the spent usage is folded into the per-name history so
        :meth:`total` reports identically with and without recycling.
        """
        usage = self._usage.pop(process.pid, None)
        if usage is not None:
            name = self._names.get(process.pid, process.name)
            retired = self._retired.setdefault(name, {})
            for kind, amount in usage.counts.items():
                retired[kind] = retired.get(kind, 0.0) + amount

    # -- reporting --------------------------------------------------------

    def usage_of(self, process: Process) -> Usage:
        return self._usage.get(process.pid, Usage())

    def total(self, kind: str, name_prefix: str = "") -> float:
        live = sum(u.get(kind) for pid, u in self._usage.items()
                   if self._names.get(pid, "").startswith(name_prefix))
        retired = sum(counts.get(kind, 0.0)
                      for name, counts in self._retired.items()
                      if name.startswith(name_prefix))
        return live + retired

    def denial_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.denials.values())
        return self.denials.get(kind, 0)
