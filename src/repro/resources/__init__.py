"""Resource policing: containers, quotas, and query scheduling (§3.5)."""

from .containers import KINDS, ResourceManager, Usage
from .scheduler import FairShareScheduler, FifoScheduler, Job, slowdown

__all__ = [
    "KINDS", "ResourceManager", "Usage",
    "FairShareScheduler", "FifoScheduler", "Job", "slowdown",
]
