"""Query schedulers: FIFO vs fair-share (§3.5's database concern).

"A W5 cluster would need to welcome SQL from all developers, and
therefore must prevent malicious queries from locking the database for
all other applications."  Quotas bound *total* consumption; the
scheduler bounds *latency*: even before a hog exhausts its quota, a
fair-share discipline keeps honest queries flowing.

The simulation is discrete: each job is (owner, cost-in-ticks); the
scheduler decides which job runs each tick.  ``completion_times``
returns, per owner, when their last job finished — the metric
experiment C9 tabulates under a hostile workload.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Job:
    """One unit of schedulable work."""

    owner: str
    cost: int

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError("job cost must be positive")


class FifoScheduler:
    """Run jobs strictly in arrival order: a hog at the head of the
    queue blocks everyone (the failure mode W5 must avoid)."""

    name = "fifo"

    def completion_times(self, jobs: Iterable[Job]) -> dict[str, int]:
        clock = 0
        finished: dict[str, int] = {}
        for job in jobs:
            clock += job.cost
            finished[job.owner] = clock
        return finished


class FairShareScheduler:
    """Round-robin one tick per owner: each owner's latency depends on
    the number of *owners*, not on any single owner's appetite."""

    name = "fair-share"

    def completion_times(self, jobs: Iterable[Job]) -> dict[str, int]:
        queues: dict[str, deque[int]] = {}
        order: list[str] = []
        for job in jobs:
            if job.owner not in queues:
                queues[job.owner] = deque()
                order.append(job.owner)
            queues[job.owner].append(job.cost)
        remaining = {owner: q.popleft() for owner, q in queues.items()}
        finished: dict[str, int] = {}
        clock = 0
        while remaining:
            for owner in list(order):
                if owner not in remaining:
                    continue
                clock += 1
                remaining[owner] -= 1
                if remaining[owner] == 0:
                    if queues[owner]:
                        remaining[owner] = queues[owner].popleft()
                    else:
                        finished[owner] = clock
                        del remaining[owner]
        return finished


def slowdown(times: dict[str, int], solo_costs: dict[str, int]
             ) -> dict[str, float]:
    """Completion time relative to running alone (1.0 = unaffected)."""
    return {owner: times[owner] / solo_costs[owner]
            for owner in times if solo_costs.get(owner)}
