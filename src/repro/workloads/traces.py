"""Request traces: reproducible mixed workloads for macro experiments.

A trace is a list of :class:`Request` records (viewer, kind, target)
with Zipf-skewed popularity on both viewers and targets — a few hot
users draw most of the traffic, matching what any real social site
sees.  The M6 bench replays traces through the full pipeline; the
generator lives here so other experiments (and downstream users) can
share the exact same workload definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .social import zipf_choices

#: Request kinds the standard catalog serves.
PROFILE = "profile"
PHOTOS = "photos"
BLOG = "blog"
FEED = "feed"

KINDS = (PROFILE, PHOTOS, BLOG, FEED)


@dataclass(frozen=True)
class Request:
    """One trace entry."""

    viewer: str
    kind: str
    target: str

    def path_and_params(self) -> tuple[str, dict]:
        """The HTTP request this entry corresponds to."""
        if self.kind == PROFILE:
            return "/app/social/profile", {"user": self.target}
        if self.kind == PHOTOS:
            return "/app/photo-share/list", {"owner": self.target}
        if self.kind == BLOG:
            return "/app/blog/list", {"author": self.target}
        if self.kind == FEED:
            return "/app/social/feed", {}
        raise ValueError(f"unknown request kind {self.kind!r}")


def make_trace(users: Sequence[str], length: int,
               viewer_skew: float = 1.1, target_skew: float = 1.4,
               kind_weights: Iterable[float] = (3, 3, 2, 1),
               seed: int = 23) -> list[Request]:
    """Generate a reproducible trace over ``users``.

    ``kind_weights`` orders (profile, photos, blog, feed); skews shape
    the Zipf popularity of viewers and targets independently.
    """
    if not users:
        return []
    viewers = zipf_choices(list(users), length, skew=viewer_skew,
                           seed=seed)
    targets = zipf_choices(list(users), length, skew=target_skew,
                           seed=seed + 1)
    weights = list(kind_weights)
    if len(weights) != len(KINDS):
        raise ValueError(f"need {len(KINDS)} kind weights")
    import random
    rng = random.Random(seed + 2)
    kinds = rng.choices(KINDS, weights=weights, k=length)
    return [Request(viewer=v, kind=k, target=t)
            for v, k, t in zip(viewers, kinds, targets)]


def trace_stats(trace: Sequence[Request]) -> dict[str, float]:
    """Summary statistics (used in bench output and tests)."""
    if not trace:
        return {"length": 0, "unique_viewers": 0, "unique_targets": 0,
                "self_traffic": 0.0}
    viewers = [r.viewer for r in trace]
    targets = [r.target for r in trace]
    self_traffic = sum(1 for r in trace if r.viewer == r.target)
    return {
        "length": len(trace),
        "unique_viewers": len(set(viewers)),
        "unique_targets": len(set(targets)),
        "self_traffic": self_traffic / len(trace),
    }
