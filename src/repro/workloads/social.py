"""Synthetic social-graph workloads.

The paper's scenarios revolve around users, friend lists, photos, and
blog posts.  No public dataset is required (see DESIGN.md §2): the
experiments need population *structure*, which we synthesize with
standard random-graph models (Watts–Strogatz for high clustering,
Barabási–Albert for degree skew) and deterministic seeds so every run
of a benchmark sees the same world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

#: Supported friend-graph models.
WATTS_STROGATZ = "watts-strogatz"
BARABASI_ALBERT = "barabasi-albert"
COMPLETE = "complete"

_ADJECTIVES = ["sunny", "quiet", "vivid", "mellow", "brisk", "dusty",
               "amber", "plaid", "novel", "mossy"]
_NOUNS = ["falcon", "harbor", "meadow", "copper", "signal", "ember",
          "willow", "summit", "prairie", "lantern"]


@dataclass
class SocialWorld:
    """A synthetic population: users, friendships, and content."""

    users: list[str]
    #: username -> set of friend usernames (symmetric)
    friends: dict[str, set[str]]
    #: username -> list of photo descriptors
    photos: dict[str, list[dict]] = field(default_factory=dict)
    #: username -> list of blog-post descriptors
    posts: dict[str, list[dict]] = field(default_factory=dict)
    #: username -> profile fields
    profiles: dict[str, dict[str, str]] = field(default_factory=dict)

    def are_friends(self, a: str, b: str) -> bool:
        return b in self.friends.get(a, set())

    def friend_list(self, user: str) -> list[str]:
        return sorted(self.friends.get(user, set()))

    def total_items(self) -> int:
        return (sum(len(v) for v in self.photos.values())
                + sum(len(v) for v in self.posts.values()))


def username(i: int) -> str:
    """Deterministic readable usernames: u0_sunny_falcon, ..."""
    return (f"u{i}_{_ADJECTIVES[i % len(_ADJECTIVES)]}"
            f"_{_NOUNS[(i // len(_ADJECTIVES)) % len(_NOUNS)]}")


def make_social_world(n_users: int = 20, model: str = WATTS_STROGATZ,
                      mean_degree: int = 4, photos_per_user: int = 3,
                      posts_per_user: int = 2, seed: int = 7) -> SocialWorld:
    """Build a reproducible synthetic population.

    ``mean_degree`` is clamped to feasible values for small
    populations; all randomness flows from ``seed``.
    """
    rng = random.Random(seed)
    users = [username(i) for i in range(n_users)]
    graph = _make_graph(n_users, model, mean_degree, seed)
    friends = {users[i]: {users[j] for j in graph.neighbors(i)}
               for i in range(n_users)}

    world = SocialWorld(users=users, friends=friends)
    for u in users:
        world.photos[u] = [
            {"filename": f"{u}-photo-{k}.jpg",
             "caption": rng.choice(_ADJECTIVES) + " " + rng.choice(_NOUNS),
             "bytes": f"<jpeg:{u}:{k}>"}
            for k in range(photos_per_user)]
        world.posts[u] = [
            {"title": f"{u} post {k}",
             "body": f"thoughts of {u} number {k}: "
                     + rng.choice(_NOUNS)}
            for k in range(posts_per_user)]
        world.profiles[u] = {
            "music": rng.choice(_NOUNS),
            "food": rng.choice(_ADJECTIVES),
            "romance": rng.choice(["looking", "taken", "complicated"]),
        }
    return world


def _make_graph(n: int, model: str, mean_degree: int, seed: int) -> nx.Graph:
    if n <= 1:
        g = nx.Graph()
        g.add_nodes_from(range(n))
        return g
    k = max(2, min(mean_degree, n - 1))
    if model == WATTS_STROGATZ:
        k = k if k % 2 == 0 else k - 1
        k = max(2, min(k, n - 1))
        return nx.watts_strogatz_graph(n, k, 0.2, seed=seed)
    if model == BARABASI_ALBERT:
        m = max(1, min(mean_degree // 2, n - 1))
        return nx.barabasi_albert_graph(n, m, seed=seed)
    if model == COMPLETE:
        return nx.complete_graph(n)
    raise ValueError(f"unknown social-graph model {model!r}")


def zipf_choices(items: list, n_draws: int, skew: float = 1.2,
                 seed: int = 11) -> list:
    """Draw ``n_draws`` items with Zipfian popularity (for request
    traces: a few hot profiles, a long tail)."""
    if not items:
        return []
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=n_draws)
