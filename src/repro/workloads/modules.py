"""Synthetic module ecosystems for the §3.2 code-search experiments.

Experiment C5 needs a registry-shaped world with known ground truth: a
planted core of genuinely high-quality modules that many independent
applications depend on, plus a long tail of filler and a set of
spammy modules that try to look popular by linking to each other.
CodeRank should surface the planted core; popularity-only ranking is
fooled by the spam clique.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx


@dataclass
class ModuleEcosystem:
    """Ground-truthed synthetic dependency world."""

    graph: nx.DiGraph
    planted_core: set[str]
    spam_clique: set[str]
    #: Raw usage counts (the popularity baseline's only signal) —
    #: self-reported, so the spam clique inflates its own freely.
    usage_counts: dict[str, int] = field(default_factory=dict)
    #: Real user-adoption counts per *app* (platform-observed; sybils
    #: have none).  Feeds CodeRank's personalization vector.
    adoption_counts: dict[str, int] = field(default_factory=dict)

    @property
    def modules(self) -> list[str]:
        return sorted(self.graph.nodes)

    def edges(self) -> list[tuple[str, str]]:
        return list(self.graph.edges)


def make_module_ecosystem(n_apps: int = 60, n_core: int = 6,
                          n_filler: int = 40, n_spam: int = 8,
                          seed: int = 13) -> ModuleEcosystem:
    """Build the synthetic ecosystem.

    * ``core-i`` modules: every app independently imports 1–3 of them
      (high in-degree from *diverse*, themselves-used places).
    * ``filler-i`` modules: each used by at most a couple of apps.
    * ``spam-i`` modules: a dense clique linking to each other, plus a
      burst of fake "usage" edges from throwaway apps nobody links to —
      high raw counts, no reputable provenance.
    """
    rng = random.Random(seed)
    g = nx.DiGraph()
    core = [f"core-{i}" for i in range(n_core)]
    filler = [f"filler-{i}" for i in range(n_filler)]
    spam = [f"spam-{i}" for i in range(n_spam)]
    apps = [f"app-{i}" for i in range(n_apps)]
    g.add_nodes_from(core + filler + spam + apps)

    usage: dict[str, int] = {m: 0 for m in core + filler + spam}
    adoption: dict[str, int] = {}

    for app in apps:
        adoption[app] = rng.randint(3, 60)  # real users, platform-observed
        for dep in rng.sample(core, rng.randint(1, min(3, n_core))):
            g.add_edge(app, dep)
            usage[dep] += rng.randint(5, 25)
        if filler and rng.random() < 0.8:
            dep = rng.choice(filler)
            g.add_edge(app, dep)
            usage[dep] += rng.randint(1, 4)
        # apps also link each other (the HTML-embed edge type)
        if rng.random() < 0.3:
            g.add_edge(app, rng.choice(apps))

    # The spam clique: dense internal links, fabricated usage counts,
    # and sock-puppet apps that "use" the spam — but no real adopters.
    for s in spam:
        for other in spam:
            if s != other:
                g.add_edge(s, other)
        usage[s] += rng.randint(2000, 5000)  # self-reported, inflated
        for k in range(3):
            sock = f"sock-{s}-{k}"
            g.add_node(sock)
            g.add_edge(sock, s)
            adoption[sock] = 0

    return ModuleEcosystem(graph=g, planted_core=set(core),
                           spam_clique=set(spam), usage_counts=usage,
                           adoption_counts=adoption)
