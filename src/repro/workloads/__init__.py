"""Synthetic workloads: social graphs, content corpora, module worlds."""

from .modules import ModuleEcosystem, make_module_ecosystem
from .social import (BARABASI_ALBERT, COMPLETE, SocialWorld, WATTS_STROGATZ,
                     make_social_world, username, zipf_choices)
from .traces import Request, make_trace, trace_stats

__all__ = [
    "ModuleEcosystem", "make_module_ecosystem",
    "BARABASI_ALBERT", "COMPLETE", "SocialWorld", "WATTS_STROGATZ",
    "make_social_world", "username", "zipf_choices",
    "Request", "make_trace", "trace_stats",
]
