"""The unified W5 exception hierarchy.

Historically each layer grew its own exception tree — labels, kernel,
filesystem, database, platform — which forced callers that only care
about "the platform said no" or "that thing does not exist" to name
five unrelated base classes.  This module defines the common roots;
every layer's existing exception classes now derive from them (the old
names remain, as the very same classes, so existing ``except`` sites
keep working unchanged).

The families:

* :class:`W5Error` — root of everything the reproduction raises on
  purpose.  ``except W5Error`` is "the platform refused or failed",
  as distinct from a bug.
* :class:`FlowDenied` — the reference monitor (or a policy layer atop
  it) said no: secrecy/integrity violations, missing capabilities,
  authorization failures.  Catching this is catching "denied", without
  caring which rule fired.
* :class:`WriteDenied` — the write-path subfamily of
  :class:`FlowDenied`: a mutation was refused (no-write-down, missing
  write privilege).  Raised via the ``Write*`` subclasses below, which
  also remain ``SecrecyViolation``/``IntegrityViolation`` instances so
  historical handlers see no difference.
* :class:`NotFound` — a named entity (process, endpoint, path, table,
  row, user, app) does not exist *from the caller's point of view*.
  Label-filtered layers deliberately raise the same class for
  "missing" and "invisible", so ``except NotFound`` is covert-channel
  safe by construction.

Layer bases (``LabelError``, ``KernelError``, ``FsError``, ``DbError``,
``PlatformError``) still exist for callers that want to scope a handler
to one subsystem.
"""

from __future__ import annotations


class W5Error(Exception):
    """Root of all deliberate W5 refusals and failures."""


class FlowDenied(W5Error):
    """An information-flow or authorization decision came back *deny*."""


class WriteDenied(FlowDenied):
    """A mutation was refused (write-down, missing write privilege)."""


class NotFound(W5Error):
    """A named entity does not exist (or is invisible to the caller)."""


class CrossShardWrite(W5Error):
    """A shard-owned structure was written from the wrong thread.

    Raised by the M13 ownership guards on :class:`AuditLog` and
    :class:`Metrics` when a record arrives from a thread other than
    the shard worker the structure is bound to — a misrouted request
    fails loudly instead of silently corrupting the stream."""


__all__ = ["W5Error", "FlowDenied", "WriteDenied", "NotFound",
           "CrossShardWrite"]
