"""The DNS front-end (§2).

"Indeed, all of W5 should have DNS and HTTP front-ends so that users
can interact with a W5 application with today's Web clients."

A tiny name system maps hostnames to provider transports, so a client
can ``browse("http://w5.example/app/blog/list")`` exactly as a 2007
browser would: resolve the host, send the path to whatever answers.
Federation benefits too — two providers registered under different
names are distinct origins to the same browser, cookies and all.
"""

from __future__ import annotations

from typing import Optional

from .client import ExternalClient, Transport
from .http import HttpRequest, HttpResponse


class NameNotFound(Exception):
    """No record for the hostname."""


class Resolver:
    """hostname → transport records (the simulator's whole DNS)."""

    def __init__(self) -> None:
        self._records: dict[str, Transport] = {}

    def register(self, hostname: str, transport: Transport) -> None:
        self._records[hostname.lower()] = transport

    def resolve(self, hostname: str) -> Transport:
        try:
            return self._records[hostname.lower()]
        except KeyError:
            raise NameNotFound(hostname) from None

    def hostnames(self) -> list[str]:
        return sorted(self._records)


def split_url(url: str) -> tuple[str, str]:
    """``http://host/path`` → (host, /path); scheme optional."""
    rest = url
    for scheme in ("https://", "http://"):
        if rest.startswith(scheme):
            rest = rest[len(scheme):]
            break
    host, sep, path = rest.partition("/")
    if not host:
        raise ValueError(f"no hostname in url {url!r}")
    return host, "/" + path


class WebBrowserClient:
    """A multi-origin client: one cookie jar *per hostname*.

    Wraps :class:`ExternalClient` so the leak-oracle machinery keeps
    working per origin, while URLs route through the resolver.
    """

    def __init__(self, owner: str, resolver: Resolver) -> None:
        self.owner = owner
        self.resolver = resolver
        self._origins: dict[str, ExternalClient] = {}

    def origin(self, hostname: str) -> ExternalClient:
        """The per-origin client (created on first use)."""
        host = hostname.lower()
        if host not in self._origins:
            transport = self.resolver.resolve(host)
            self._origins[host] = ExternalClient(self.owner, transport)
        return self._origins[host]

    def browse(self, url: str, method: str = "GET",
               params: Optional[dict] = None) -> HttpResponse:
        host, path = split_url(url)
        client = self.origin(host)
        return client.request(method, path, params=params)

    def login(self, url: str, password: str) -> HttpResponse:
        host, path = split_url(url)
        return self.origin(host).post(
            path or "/login", params={"username": self.owner,
                                      "password": password})

    def ever_received_anywhere(self, needle) -> bool:
        return any(c.ever_received(needle)
                   for c in self._origins.values())
