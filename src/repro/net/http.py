"""A minimal HTTP object model.

W5 keeps today's clients (§1: "the clients are the same"), so the
reproduction models HTTP as data structures rather than sockets: a
request carries method/path/params/cookies, a response carries status,
body and headers.  While a response is still *inside* the perimeter it
additionally carries ``content_label`` — the secrecy label of the data
it was rendered from; the gateway consults and then strips it at
egress, so nothing labeled ever reaches an
:class:`~repro.net.client.ExternalClient`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from ..labels import Label

GET = "GET"
POST = "POST"


@dataclass
class HttpRequest:
    """One client request as it arrives at the provider's front door."""

    method: str
    path: str
    params: dict[str, Any] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def path_parts(self) -> list[str]:
        # Split once per request object: the gateway, router and planned
        # dispatch all re-ask.  The memo is keyed on the path string so a
        # mutated request (tests do this) never sees a stale split.
        cached = getattr(self, "_parts_cache", None)
        if cached is not None and cached[0] == self.path:
            return cached[1]
        parts = [p for p in self.path.split("/") if p]
        self._parts_cache = (self.path, parts)
        return parts


@dataclass
class HttpResponse:
    """One response.

    ``content_label`` is meaningful only inside the perimeter; the
    gateway zeroes it after the export check.  ``set_cookies`` become
    client cookie-jar updates on delivery.
    """

    status: int = 200
    body: Any = ""
    headers: dict[str, str] = field(default_factory=dict)
    set_cookies: dict[str, str] = field(default_factory=dict)
    content_label: Label = field(default_factory=lambda: Label.EMPTY)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def ok(body: Any, label: Label = Label.EMPTY, **headers: str) -> HttpResponse:
    """Shorthand for a 200 response."""
    return HttpResponse(status=200, body=body, headers=dict(headers),
                        content_label=label)


def error(status: int, message: str) -> HttpResponse:
    """Shorthand for an error response (always unlabeled)."""
    return HttpResponse(status=status, body={"error": message})


_SCRIPT_RE = re.compile(r"<\s*script\b.*?<\s*/\s*script\s*>",
                        re.IGNORECASE | re.DOTALL)
_INLINE_JS_RE = re.compile(r"\son\w+\s*=\s*(\"[^\"]*\"|'[^']*')",
                           re.IGNORECASE)


def strip_javascript(html: str) -> str:
    """Remove script blocks and inline handlers from HTML.

    §3.5: "W5 could disable JavaScript entirely by filtering it out at
    the security perimeter."  This is that filter; the gateway applies
    it when its policy is ``JS_BLOCK``.
    """
    cleaned = _SCRIPT_RE.sub("", html)
    cleaned = _INLINE_JS_RE.sub("", cleaned)
    return cleaned


def contains_javascript(html: str) -> bool:
    """True if ``html`` still carries script blocks or inline handlers."""
    return bool(_SCRIPT_RE.search(html)) or bool(_INLINE_JS_RE.search(html))
