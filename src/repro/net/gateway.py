"""The security perimeter.

"The provider must establish a logical security perimeter that excludes
external clients and that allows only 'authorized' data to exit" (§2).
The :class:`Gateway` is that perimeter: the single code path by which
bytes leave labeled space.  Its export rule is the paper's boilerplate
policy (§3.1):

    *Bob's data can only leave the security perimeter if destined for
    Bob's browser.*

Mechanically: a response rendered for authenticated user *u* may carry
secrecy tags only from *u*'s own **export authority** — the set of
``t-`` capabilities the platform associates with *u* (her own data
tags, plus any tags whose owners granted her access through a
declassifier).  Any residual tag means somebody else's secret would
ride out in the response, and the gateway refuses with a 403 and a
DENY audit record.

The gateway also applies the client-side JavaScript policy (§3.5):
``JS_BLOCK`` strips scripts from exported HTML, ``JS_ALLOW`` passes
them through (for deployments adopting MashupOS-style client support).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel import Kernel
from ..kernel import audit as A
from ..labels import CapabilitySet, Label, SecrecyViolation
from .http import HttpRequest, HttpResponse, contains_javascript, strip_javascript
from .session import SESSION_COOKIE, Session, SessionManager

JS_BLOCK = "block"
JS_ALLOW = "allow"


class ExportViolation(SecrecyViolation):
    """Labeled data tried to cross the perimeter without authority."""


#: Signature of the authority oracle the platform plugs in:
#: username (or None for anonymous recipients) -> the CapabilitySet of
#: export privileges held for them.  Anonymous recipients are real
#: callers of this oracle — public declassifiers can open tags to
#: everyone — so the argument is Optional, matching what
#: :meth:`Gateway.export_check` actually passes.
AuthorityFn = Callable[[Optional[str]], CapabilitySet]


class Gateway:
    """The one door in the wall.

    ``rate_limit`` caps requests per principal per window — §3.5's
    resource policing applied at the edge, before a request even
    reaches an application.  ``None`` disables it.  Anonymous traffic
    shares one bucket (a deliberate, documented coarseness: per-IP
    buckets are beyond the simulator's network model).
    """

    def __init__(self, kernel: Kernel, sessions: SessionManager,
                 authority_for: AuthorityFn,
                 js_policy: str = JS_BLOCK,
                 rate_limit: Optional[int] = None,
                 rate_window: int = 100) -> None:
        if js_policy not in (JS_BLOCK, JS_ALLOW):
            raise ValueError(f"unknown js policy {js_policy!r}")
        self.kernel = kernel
        self.sessions = sessions
        self.authority_for = authority_for
        self.js_policy = js_policy
        self.rate_limit = rate_limit
        self.rate_window = rate_window
        self._tick = 0
        self._window_counts: dict[str, int] = {}
        #: Counters the benchmarks read.
        self.exports_allowed = 0
        self.exports_denied = 0
        self.rate_limited = 0

    # ------------------------------------------------------------------
    # edge policing
    # ------------------------------------------------------------------

    def admit(self, principal: Optional[str]) -> bool:
        """Count a request against its principal's window; False means
        the caller should answer 429 without doing any work.

        No span of its own: the provider's ``gateway.admission`` span
        covers authenticate + admit in one timed unit (two extra spans
        here were pure overhead on the hot path).
        """
        if self.rate_limit is None:
            return True
        self._tick += 1
        if self._tick % self.rate_window == 0:
            self._window_counts.clear()
        key = principal or "<anonymous>"
        count = self._window_counts.get(key, 0) + 1
        self._window_counts[key] = count
        if count > self.rate_limit:
            self.rate_limited += 1
            self.kernel.audit.record(A.RESOURCE, False, "gateway",
                                     f"rate limit: {key}")
            return False
        return True

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def authenticate(self, request: HttpRequest) -> Optional[Session]:
        """Resolve the session cookie; None means anonymous.

        Timed by the provider's ``gateway.admission`` span, together
        with :meth:`admit`.
        """
        return self.sessions.resolve(request.cookies.get(SESSION_COOKIE))

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------

    def export_check(self, content_label: Label,
                     recipient: Optional[str]) -> None:
        """Raise :class:`ExportViolation` unless every secrecy tag on
        the content is within the recipient's export authority.

        Anonymous recipients (``None``) are asked of the oracle too:
        they hold no authority of their own, but an owner's *public*
        declassifier may open specific tags to everyone.

        Timed by the caller's ``gateway.egress`` span on detail-sampled
        traces (the nested ``declass.authority`` span still shows the
        oracle's share there).
        """
        if content_label.is_empty():
            # Unlabeled content exits under any authority — skip the
            # oracle entirely (the dominant case for static/provider
            # routes).  The audit record is identical to the general
            # allow path, so nothing downstream can tell.
            self.exports_allowed += 1
            self.kernel.audit.record_lazy(
                A.EXPORT, True, "gateway",
                "allow export to %s", (recipient or "anonymous",))
            return
        authority = self.authority_for(recipient)
        residue = self.kernel.flow_cache.exportable_residue(
            content_label, authority, category="net.export")
        if not residue.is_empty():
            self.exports_denied += 1
            self.kernel.audit.record(
                A.EXPORT, False, "gateway",
                f"deny export to {recipient or 'anonymous'}: residual tags "
                f"{sorted(t.tag_id for t in residue)}")
            raise ExportViolation(
                f"response for {recipient or 'anonymous'} carries secrecy "
                f"tags {sorted(t.tag_id for t in residue)} outside their "
                f"export authority")
        self.exports_allowed += 1
        self.kernel.audit.record_lazy(
            A.EXPORT, True, "gateway",
            "allow export to %s", (recipient or "anonymous",))

    def egress(self, response: HttpResponse, recipient: Optional[str],
               js_policy: Optional[str] = None) -> HttpResponse:
        """Run the export check and sanitize the response for the wire.

        On refusal the *client* receives a generic 403 that names no
        tags (naming them would itself leak); the specifics live in the
        audit log for the provider.  ``js_policy`` overrides the
        gateway default per request (W5 lets users choose their own
        client-side posture, §3.5).

        The ``gateway.egress`` span is detail-tier: it appears on
        sampled traces.  A refusal is never invisible on the others —
        the 403 status the provider stamps on the root span marks the
        trace as an error (so the flight recorder keeps it), and the
        DENY audit record carries the trace id either way.
        """
        with self.kernel.tracer.detail(
                "gateway.egress", recipient=recipient or "anonymous") as sp:
            try:
                self.export_check(response.content_label, recipient)
            except ExportViolation:
                sp.fail("ExportViolation")
                sp.annotate(denied=True)
                return HttpResponse(status=403,
                                    body={"error": "not authorized"},
                                    content_label=Label.EMPTY)
            return self._deliver(response, js_policy)

    # ------------------------------------------------------------------
    # planned egress (M12)
    # ------------------------------------------------------------------

    def export_check_planned(self, content_label: Label,
                             recipient: Optional[str],
                             authority: CapabilitySet,
                             allow_detail: str) -> None:
        """:meth:`export_check` with the recipient's authority (and the
        allow-audit detail string) precomputed by a request plan.

        Counters, audit records and the raised :class:`ExportViolation`
        are identical to the live check; only the oracle call is
        skipped.  The caller is responsible for having re-validated the
        plan's authority epoch before handing the authority in.
        """
        if content_label.is_empty():
            self.exports_allowed += 1
            self.kernel.audit.record_lazy(A.EXPORT, True, "gateway",
                                          allow_detail)
            return
        residue = self.kernel.flow_cache.exportable_residue(
            content_label, authority, category="net.export")
        if not residue.is_empty():
            self.exports_denied += 1
            self.kernel.audit.record(
                A.EXPORT, False, "gateway",
                f"deny export to {recipient or 'anonymous'}: residual tags "
                f"{sorted(t.tag_id for t in residue)}")
            raise ExportViolation(
                f"response for {recipient or 'anonymous'} carries secrecy "
                f"tags {sorted(t.tag_id for t in residue)} outside their "
                f"export authority")
        self.exports_allowed += 1
        self.kernel.audit.record_lazy(A.EXPORT, True, "gateway", allow_detail)

    def egress_planned(self, response: HttpResponse,
                       recipient: Optional[str],
                       js_policy: Optional[str],
                       authority: CapabilitySet,
                       allow_detail: str) -> HttpResponse:
        """:meth:`egress` driven by a request plan's precomputed export
        authority.  Observable-identical to the live path."""
        with self.kernel.tracer.detail(
                "gateway.egress", recipient=recipient or "anonymous") as sp:
            try:
                self.export_check_planned(response.content_label, recipient,
                                          authority, allow_detail)
            except ExportViolation:
                sp.fail("ExportViolation")
                sp.annotate(denied=True)
                return HttpResponse(status=403,
                                    body={"error": "not authorized"},
                                    content_label=Label.EMPTY)
            return self._deliver(response, js_policy)

    def _deliver(self, response: HttpResponse,
                 js_policy: Optional[str]) -> HttpResponse:
        """Post-export sanitization shared by both egress variants:
        apply the JS policy and re-stamp the response unlabeled.

        The re-stamp mutates in place: the pre-export response is
        request-private (built by the app wrapper moments earlier and
        never retained), so rebuilding the dataclass and copying its
        header dicts bought nothing."""
        effective_js = js_policy if js_policy in (JS_BLOCK, JS_ALLOW) \
            else self.js_policy
        body = response.body
        if effective_js == JS_BLOCK and isinstance(body, str) \
                and contains_javascript(body):
            response.body = strip_javascript(body)
            self.kernel.audit.record(A.EXPORT, True, "gateway",
                                     "stripped javascript at perimeter")
        response.content_label = Label.EMPTY
        return response
