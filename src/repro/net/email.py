"""Email: the perimeter's second door.

Two pieces of the paper meet here.  §2's example application "sends
him daily e-mail with the 5 most 'relevant' photos and blog entries",
so apps must be able to emit mail; and §3.1's example policy says a
user's data "may be viewed only by his roommates and certainly not,
say, emailed to the application's author" — so outgoing mail must pass
exactly the same export check as HTTP responses.

:class:`EmailGateway` owns the address book (address → platform user,
or an external stranger) and consults the same authority oracle as the
HTTP gateway.  Mail to an address owned by user *u* is an export to
recipient *u*; mail to an unknown address is an export to an anonymous
stranger (only public data may ride).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..kernel import Kernel
from ..kernel import audit as A
from ..labels import Label
from .gateway import AuthorityFn, ExportViolation


@dataclass(frozen=True)
class Email:
    """One delivered message (already outside the perimeter)."""

    to_address: str
    subject: str
    body: object


@dataclass
class Mailbox:
    address: str
    owner: Optional[str]  # platform username, or None for external
    messages: list[Email] = field(default_factory=list)


class EmailGateway:
    """The mail exit: same labels, same authority, different medium."""

    def __init__(self, kernel: Kernel, authority_for: AuthorityFn) -> None:
        self.kernel = kernel
        self.authority_for = authority_for
        self._boxes: dict[str, Mailbox] = {}
        self.sent = 0
        self.refused = 0

    # -- address book ---------------------------------------------------

    def register_address(self, address: str,
                         owner: Optional[str] = None) -> Mailbox:
        box = Mailbox(address=address, owner=owner)
        self._boxes[address] = box
        return box

    def mailbox(self, address: str) -> Mailbox:
        if address not in self._boxes:
            # unknown addresses exist implicitly (the open internet)
            self._boxes[address] = Mailbox(address=address, owner=None)
        return self._boxes[address]

    # -- the checked exit --------------------------------------------------

    def send(self, to_address: str, subject: str, body: object,
             content_label: Label) -> Email:
        """Deliver mail iff the content may be exported to the
        address's owner.  Raises :class:`ExportViolation` otherwise."""
        with self.kernel.tracer.span("gateway.email", to=to_address):
            return self._send(to_address, subject, body, content_label)

    def _send(self, to_address: str, subject: str, body: object,
              content_label: Label) -> Email:
        box = self.mailbox(to_address)
        authority = self.authority_for(box.owner)
        residue = self.kernel.flow_cache.exportable_residue(
            content_label, authority, category="net.export")
        if not residue.is_empty():
            self.refused += 1
            self.kernel.audit.record(
                A.EXPORT, False, "email-gateway",
                f"deny mail to {to_address} (owner={box.owner}): residual "
                f"tags {sorted(t.tag_id for t in residue)}")
            raise ExportViolation(
                f"mail to {to_address} would carry secrecy tags outside "
                f"the recipient's authority")
        self.sent += 1
        self.kernel.audit.record(A.EXPORT, True, "email-gateway",
                                 f"mail to {to_address}")
        email = Email(to_address=to_address, subject=subject, body=body)
        box.messages.append(email)
        return email
