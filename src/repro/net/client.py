"""External clients: the browsers outside the perimeter.

An :class:`ExternalClient` is intentionally dumb — a cookie jar and a
transport function — because W5 changes servers, not clients (§1).
Whatever a client receives is, by definition, *outside* the perimeter;
the test suites treat ``client.received`` as the ground truth for
"what leaked".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .http import GET, POST, HttpRequest, HttpResponse
from .session import SESSION_COOKIE

Transport = Callable[[HttpRequest], HttpResponse]


class ExternalClient:
    """A browser owned by one person, possibly logged in somewhere."""

    def __init__(self, owner: str, transport: Transport) -> None:
        self.owner = owner
        self.transport = transport
        self.cookies: dict[str, str] = {}
        #: Every response body this client ever received (leak oracle).
        self.received: list[Any] = []

    # -- plumbing -------------------------------------------------------

    def request(self, method: str, path: str,
                params: Optional[dict[str, Any]] = None,
                body: Any = None) -> HttpResponse:
        req = HttpRequest(method=method, path=path,
                          params=dict(params or {}),
                          cookies=dict(self.cookies), body=body)
        resp = self.transport(req)
        self.cookies.update(resp.set_cookies)
        self.received.append(resp.body)
        return resp

    def get(self, path: str, **params: Any) -> HttpResponse:
        return self.request(GET, path, params=params)

    def post(self, path: str, params: Optional[dict[str, Any]] = None,
             body: Any = None) -> HttpResponse:
        return self.request(POST, path, params=params, body=body)

    # -- conveniences ---------------------------------------------------

    def login(self, password: str, path: str = "/login") -> HttpResponse:
        return self.post(path, params={"username": self.owner,
                                       "password": password})

    def logged_in(self) -> bool:
        return SESSION_COOKIE in self.cookies

    def ever_received(self, needle: Any) -> bool:
        """True if ``needle`` appeared in (or as a substring of) any
        response body this client got — the leak test used throughout
        the experiments."""
        for body in self.received:
            if body == needle:
                return True
            if isinstance(body, str) and isinstance(needle, str) \
                    and needle in body:
                return True
            if isinstance(body, (list, tuple)) and needle in body:
                return True
            if isinstance(body, dict) and (needle in body.values()
                                           or needle in body):
                return True
        return False
