"""Session management: cookies in, authenticated identities out.

When an HTTP request arrives, "the provider would read incoming cookies
or HTTP data fields to authenticate the user" (§2).  The session
manager is provider code (trusted): it issues unguessable tokens at
login and maps them back to usernames on later requests.

Tokens are drawn from a deterministic PRNG seeded per-manager so test
runs are reproducible; the *number* of bits is what a real deployment
would care about, not their source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import W5Error

#: The cookie name W5 sessions travel under.
SESSION_COOKIE = "w5_session"


class AuthError(W5Error):
    """Bad credentials or an unusable session token."""


@dataclass(frozen=True)
class Session:
    token: str
    username: str


class SessionManager:
    """Issues and resolves session tokens; stores password hashes.

    Passwords are stored salted-and-hashed with :func:`hash` for
    brevity — credential storage strength is orthogonal to everything
    this reproduction measures.

    ``ttl`` bounds a session's lifetime in clock units; the manager's
    clock is logical (advanced by :meth:`tick` or by the platform), so
    expiry is deterministic under test.  ``None`` disables expiry.
    """

    def __init__(self, seed: int = 0x57515,
                 ttl: Optional[float] = None) -> None:
        self._rng = random.Random(seed)
        self._sessions: dict[str, Session] = {}
        self._issued_at: dict[str, float] = {}
        self._credentials: dict[str, int] = {}
        self._salt = self._rng.getrandbits(64)
        self.ttl = ttl
        self.now: float = 0.0

    def tick(self, dt: float = 1.0) -> None:
        """Advance the logical clock."""
        self.now += dt

    # -- accounts -----------------------------------------------------

    def register(self, username: str, password: str) -> None:
        if username in self._credentials:
            raise AuthError(f"user {username!r} already exists")
        self._credentials[username] = self._digest(password)

    def has_user(self, username: str) -> bool:
        return username in self._credentials

    def _digest(self, password: str) -> int:
        return hash((self._salt, password))

    # -- sessions ------------------------------------------------------

    def login(self, username: str, password: str) -> Session:
        """Check credentials and mint a session."""
        expected = self._credentials.get(username)
        if expected is None or expected != self._digest(password):
            raise AuthError("bad username or password")
        token = f"s{self._rng.getrandbits(128):032x}"
        session = Session(token=token, username=username)
        self._sessions[token] = session
        self._issued_at[token] = self.now
        return session

    def resolve(self, token: Optional[str]) -> Optional[Session]:
        """The session for ``token``; None for absent, invalid, or
        expired tokens (expired ones are dropped on sight)."""
        if not token:
            return None
        session = self._sessions.get(token)
        if session is None:
            return None
        if self.ttl is not None and \
                self.now - self._issued_at.get(token, 0.0) > self.ttl:
            self.logout(token)
            return None
        return session

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)
        self._issued_at.pop(token, None)

    def active_sessions(self, username: str) -> int:
        return sum(1 for s in self._sessions.values()
                   if s.username == username)

    def remove_user(self, username: str) -> None:
        """Drop credentials and kill every live session (account
        deletion path)."""
        self._credentials.pop(username, None)
        doomed = [token for token, s in self._sessions.items()
                  if s.username == username]
        for token in doomed:
            self.logout(token)
