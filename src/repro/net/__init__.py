"""The network edge: HTTP model, sessions, clients, and the perimeter."""

from .browser import Browser, Frame, FrameIsolationError
from .client import ExternalClient, Transport
from .dns import NameNotFound, Resolver, WebBrowserClient, split_url
from .email import Email, EmailGateway, Mailbox
from .envelopes import Envelope, EnvelopeChannel, content_digest
from .gateway import (JS_ALLOW, JS_BLOCK, AuthorityFn, ExportViolation,
                      Gateway)
from .http import (GET, POST, HttpRequest, HttpResponse, contains_javascript,
                   error, ok, strip_javascript)
from .session import SESSION_COOKIE, AuthError, Session, SessionManager

__all__ = [
    "Browser", "Frame", "FrameIsolationError",
    "ExternalClient", "Transport",
    "NameNotFound", "Resolver", "WebBrowserClient", "split_url",
    "Email", "EmailGateway", "Mailbox",
    "Envelope", "EnvelopeChannel", "content_digest",
    "JS_ALLOW", "JS_BLOCK", "AuthorityFn", "ExportViolation", "Gateway",
    "GET", "POST", "HttpRequest", "HttpResponse", "contains_javascript",
    "error", "ok", "strip_javascript",
    "SESSION_COOKIE", "AuthError", "Session", "SessionManager",
]
