"""Content-addressed inter-provider envelopes (M15).

Federated sync moves user data between providers.  The naive mover
ships every file as its own read/compare/write round trip and has no
memory of what it already sent; at production corpus sizes that is
both O(corpus) traffic and O(corpus) latency per round.  This module
is the transport half of the fix, lifted from the decentralized-web
designs in PAPERS.md (Secure Web Objects' named, verifiable object
envelopes; append-only-log replication's content dedup):

* an :class:`Envelope` names one unit of transfer (a file or a row)
  by a **blake2b content digest**, so equality is decided without
  shipping or even touching the destination copy;
* an :class:`EnvelopeChannel` is one direction of one provider link.
  It remembers the digest each key last held on the *destination*
  (the per-link seen-digest cache): re-offering unchanged content is
  dropped at the transport layer, counted, and never turns into a
  read or write on the far side;
* :meth:`EnvelopeChannel.transfer_batch` applies a whole batch of
  dirty envelopes through a single destination-side applier call —
  one agent, one pass — instead of N independent round trips.

The transport is deliberately policy-free: envelopes are built and
applied by agents that hold exactly the linked user's authority on
each side (``repro.federation``), so every byte still moves through
the reference monitor.  The channel only ever *suppresses* work it
can prove redundant by digest; it never writes on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Callable, Iterable, Optional

__all__ = ["Envelope", "EnvelopeChannel", "content_digest"]

#: 128-bit digests: collision-safe for dedup at any realistic corpus
#: size while keeping envelope headers short.
DIGEST_SIZE = 16


def content_digest(payload: Any, *, size: int = DIGEST_SIZE) -> str:
    """The blake2b content address of one transferable payload.

    Payloads are whatever the labeled stores hold (str and bytes in
    practice; the canonical ``repr`` covers the long tail of JSON-ish
    values deterministically within a process).
    """
    if isinstance(payload, bytes):
        raw = b"b\x00" + payload
    elif isinstance(payload, str):
        raw = b"s\x00" + payload.encode("utf-8", "surrogatepass")
    else:
        raw = b"r\x00" + repr(payload).encode("utf-8", "surrogatepass")
    return blake2b(raw, digest_size=size).hexdigest()


@dataclass(frozen=True)
class Envelope:
    """One content-addressed unit of inter-provider transfer.

    ``kind`` is ``"file"`` or ``"row"``; ``key`` names the destination
    slot (a path, or a table name — rows are append-only so the key is
    not unique per row); ``digest`` addresses the payload.
    """

    kind: str
    key: str
    digest: str
    payload: Any = field(compare=False)

    def approx_bytes(self) -> int:
        payload = self.payload
        if isinstance(payload, bytes):
            return len(payload)
        if isinstance(payload, str):
            return len(payload.encode("utf-8", "surrogatepass"))
        return len(repr(payload))


class EnvelopeChannel:
    """One direction of a provider link's transport, with dedup memory.

    ``holds``/``note`` manage the seen-digest cache: what this channel
    believes each file key currently contains on the destination.
    Entries are written when the channel itself ships content or when
    the reconciler observes byte equality, and **invalidated** whenever
    the destination's own journal shows a foreign write to the key
    (:meth:`forget`) — the cache is a performance fact, never a
    substitute for the reconciler's authority checks.

    Row envelopes are batched and counted here but never digest-
    deduplicated: the row mirror is append-only and duplicate row
    *content* is legitimate (two identical posts are two rows), so row
    dedup belongs to the semantic layer above (the per-link key
    bookkeeping in ``repro.federation.delta``).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        #: file key -> digest we believe the destination holds.
        self._dest_digest: dict[str, str] = {}
        self.stats = {"envelopes_sent": 0, "envelopes_deduped": 0,
                      "bytes_moved": 0, "batches": 0}

    # -- the seen-digest cache ---------------------------------------------

    def holds(self, key: str, digest: str) -> bool:
        """Does the destination already hold ``digest`` at ``key``?"""
        return self._dest_digest.get(key) == digest

    def note(self, key: str, digest: str) -> None:
        """Record that the destination now holds ``digest`` at ``key``."""
        self._dest_digest[key] = digest

    def forget(self, key: str) -> None:
        """Drop the cache entry for ``key`` (a foreign write landed on
        the destination; its content is unknown until re-read)."""
        self._dest_digest.pop(key, None)

    def clear(self) -> None:
        """Drop the whole cache (cursor loss, provider recovery)."""
        self._dest_digest.clear()

    def dedup(self, envelope: Envelope) -> bool:
        """True (and counted) iff ``envelope`` is redundant by digest.

        Only file envelopes are eligible — see the class docstring.
        """
        if envelope.kind == "file" \
                and self.holds(envelope.key, envelope.digest):
            self.stats["envelopes_deduped"] += 1
            return True
        return False

    # -- batched application -----------------------------------------------

    def transfer_batch(self, envelopes: Iterable[Envelope],
                       apply: Callable[[Envelope], None],
                       tracer: Optional[Any] = None,
                       ctx: Optional[tuple] = None,
                       graft: Optional[Callable[[str, dict], None]] = None,
                       ) -> int:
        """Apply a batch of envelopes on the destination in one pass.

        ``apply`` runs destination-side with the linked user's agent
        already checked out; a ``fed.envelope`` span wraps the whole
        batch when the destination provider (``tracer``) is tracing.
        When the destination is a *different* provider from the one
        holding the ``fed.sync`` root, ``ctx`` carries that root's
        :class:`~repro.obs.TraceContext` across the link: the
        destination opens ``fed.envelope`` as its own root, the
        resulting skeleton is handed to ``graft`` so the sync side can
        stitch it under ``fed.sync``, and the destination's sampling
        decision follows the origin's (one fold decision per sync).
        Returns the number of envelopes applied (post-dedup).
        """
        batch = [e for e in envelopes if not self.dedup(e)]
        if not batch:
            return 0
        self.stats["batches"] += 1
        if tracer is None or not tracer.enabled:
            self._apply_batch(batch, apply)
        elif tracer.current is not None or ctx is None:
            # Same-provider destination (or no propagated context):
            # nest directly under whatever span is open here.
            with tracer.span("fed.envelope", channel=self.name,
                             n=len(batch)):
                self._apply_batch(batch, apply)
        else:
            from ..obs.fleet import RemoteCapture
            from ..obs.trace import TraceContext
            with RemoteCapture(tracer, TraceContext(*ctx)) as capture:
                with tracer.request("fed.envelope", channel=self.name,
                                    n=len(batch)):
                    self._apply_batch(batch, apply)
            if graft is not None:
                for skeleton in capture.skeletons:
                    graft(self.name, skeleton)
        return len(batch)

    def _apply_batch(self, batch: list[Envelope],
                     apply: Callable[[Envelope], None]) -> None:
        for envelope in batch:
            apply(envelope)
            self.stats["envelopes_sent"] += 1
            self.stats["bytes_moved"] += envelope.approx_bytes()
            if envelope.kind == "file":
                self.note(envelope.key, envelope.digest)
