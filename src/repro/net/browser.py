"""Client-side support: a browser model with MashupOS-style frames.

§3.5: "JavaScript is an important Web feature, as well as a source of
many security problems [...] W5 could disable JavaScript entirely by
filtering it out at the security perimeter, but recent ideas described
in MashupOS could extend W5 policies to the client's Web browser."

Both options are modeled:

* the perimeter filter lives in :mod:`repro.net.gateway` (default);
* this module models the MashupOS extension — a :class:`Browser`
  whose pages are composed of **frames**, each attributed to the
  application that produced it.  A frame's script may read sibling
  frames only with the same origin app; cross-origin reads raise
  :class:`FrameIsolationError`.  That is what lets a deployment turn
  the JS filter *off* for users who opt in, without reopening
  cross-app script theft.

The model is deliberately small — origins and scripted reads — because
that is the part of MashupOS W5's argument depends on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .client import ExternalClient

_frame_ids = itertools.count(1)


class FrameIsolationError(Exception):
    """A script touched a frame of a different origin."""


@dataclass
class Frame:
    """One isolated compartment of a page."""

    origin_app: str
    content: Any
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Frame(#{self.frame_id} origin={self.origin_app})"


class Browser:
    """A client-side composition surface over an external client.

    ``visit(app, path)`` fetches through the (perimeter-checked)
    client and mounts the body in a frame attributed to ``app``.
    ``script_read(reader, target)`` models a script in ``reader``
    dereferencing ``target``'s DOM — allowed only same-origin.
    """

    def __init__(self, client: ExternalClient) -> None:
        self.client = client
        self.frames: list[Frame] = []

    def visit(self, app: str, path: str, **params: Any) -> Frame:
        response = self.client.get(path, **params)
        frame = Frame(origin_app=app, content=response.body)
        self.frames.append(frame)
        return frame

    def compose(self, origin_app: str, content: Any) -> Frame:
        """Mount locally-generated content (a client-side mashup shim)."""
        frame = Frame(origin_app=origin_app, content=content)
        self.frames.append(frame)
        return frame

    def script_read(self, reader: Frame, target: Frame) -> Any:
        """A script in ``reader`` reads ``target``'s content."""
        if reader.origin_app != target.origin_app:
            raise FrameIsolationError(
                f"script from {reader.origin_app!r} may not read a "
                f"{target.origin_app!r} frame")
        return target.content

    def page(self) -> list[tuple[str, Any]]:
        """What the user sees: every frame, regardless of origin."""
        return [(f.origin_app, f.content) for f in self.frames]
