"""``python -m repro`` — a 30-second self-demonstration.

Spins up a provider with the standard catalog, runs the paper's core
scenario (upload → friend view → stranger blocked → thief blocked),
and prints the audit summary.  Exits non-zero if any property fails,
so it doubles as a smoke test for packaged installs.
"""

from __future__ import annotations

import sys

from . import __version__
from .core import Metrics, W5System


def main() -> int:
    print(f"W5 reproduction v{__version__} — self-demonstration\n")
    w5 = W5System(with_adversaries=True)
    metrics = Metrics(w5.audit())

    bob = w5.add_user("bob", apps=["photo-share", "data-thief"],
                      friends=["amy"])
    amy = w5.add_user("amy", apps=["photo-share"], friends=["bob"])
    eve = w5.add_user("eve", apps=["photo-share"])

    secret = "<jpeg: bob's beach photo>"
    bob.get("/app/photo-share/upload", filename="beach.jpg", data=secret)

    checks = []
    r = amy.get("/app/photo-share/view", owner="bob",
                filename="beach.jpg")
    checks.append(("friend can view", r.ok and r.body["data"] == secret))

    r = eve.get("/app/photo-share/view", owner="bob",
                filename="beach.jpg")
    checks.append(("stranger blocked (403)", r.status == 403))
    checks.append(("stranger got no bytes", not eve.ever_received(secret)))

    r = eve.get("/app/data-thief/go", victim="bob")
    checks.append(("thief app blocked", not eve.ever_received(secret)))

    failed = 0
    for name, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        failed += 0 if ok else 1

    print(f"\naudit: {metrics.count('export', allowed=True)} exports "
          f"allowed, {metrics.count('export', allowed=False)} denied "
          f"(denial rate {metrics.denial_rate('export'):.0%})")
    print("run `pytest benchmarks/ --benchmark-only -s` for the full "
          "experiment suite (see EXPERIMENTS.md)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
