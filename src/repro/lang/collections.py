"""Labeled collections: per-element provenance.

The payoff of language-level DIFC is that a *collection* can mix
elements of different provenance and still be partially exportable.
``LabeledList`` keeps each element's label separate; exporting to a
viewer yields exactly the elements their authority covers, plus an
honest count of what was withheld (the count itself reveals only what
the boilerplate policy already reveals: that *something* exists — the
same information a 403 carries in the process-level model).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..labels import CapabilitySet, exportable_tags
from .values import Labeled, lift


class LabeledList:
    """A sequence of independently-labeled elements."""

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items: list[Labeled] = [lift(x) for x in items]

    def append(self, item: Any) -> None:
        self._items.append(lift(item))

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Labeled]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Labeled:
        return self._items[index]

    # -- label-aware operations ------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "LabeledList":
        """Element-wise map, preserving each element's own label."""
        out = LabeledList()
        for item in self._items:
            out.append(Labeled(fn(item.peek()), item.label))
        return out

    def sort_by(self, key: Callable[[Any], Any],
                reverse: bool = False) -> "LabeledList":
        """Sort on a key of the raw values.

        Honest caveat (documented, not hidden): the *order* of the
        exported subset can depend on unexportable elements' keys only
        through their absence — elements are compared before
        filtering, but withheld elements are removed wholesale, so no
        secret key value is observable in the survivors' relative
        order beyond what filtering already reveals.
        """
        out = LabeledList()
        out._items = sorted(self._items, key=lambda it: key(it.peek()),
                            reverse=reverse)
        return out

    def export_for(self, authority: CapabilitySet
                   ) -> tuple[list[Any], int]:
        """(deliverable raw items, withheld count) for an authority."""
        delivered: list[Any] = []
        withheld = 0
        for item in self._items:
            if exportable_tags(item.label, authority).is_empty():
                delivered.append(item.peek())
            else:
                withheld += 1
        return delivered, withheld
