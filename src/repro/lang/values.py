"""Language-level DIFC: labeled values.

§3.1: "An alternate architecture built with language-level support
[5, 12] is also possible."  This package is that alternative, at the
granularity SIF/Jif work at: labels attach to *values*, not processes.
Every derived value carries the join of its inputs' labels, and the
only way a label ever shrinks is explicit declassification with the
matching authority.

Why bother, when the kernel already enforces process labels?
Granularity.  A process computing over five users' data is tainted
with all five tags and its output is all-or-nothing at the perimeter;
a *value-level* computation keeps each item's provenance separate, so
the exportable subset can be delivered and only the rest withheld.
Experiment A2 measures exactly that difference on the social feed.

Implicit flows
--------------

The classic language-level hazard is branching on a secret::

    if secret_flag:          # the branch itself leaks
        public = 1

``Labeled.__bool__`` therefore raises :class:`ImplicitFlowError`:
secret-dependent control flow must go through :func:`lselect`, which
folds the condition's label into whichever branch value is chosen —
making the (unavoidable) flow explicit and tracked.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, TypeVar

from ..labels import (CapabilitySet, Label, SecrecyViolation,
                      exportable_tags)

T = TypeVar("T")


class ImplicitFlowError(TypeError):
    """Secret-dependent control flow attempted outside lselect."""


class Labeled:
    """An immutable (value, secrecy-label) pair.

    Arithmetic and comparison operators propagate taint: the result of
    ``a + b`` carries ``a.label | b.label``.  Truthiness is forbidden
    (see module docstring); iteration and indexing return labeled
    elements carrying the container's label joined with nothing —
    element-level provenance requires building the container from
    labeled elements (see :func:`lmap` and LabeledList).
    """

    __slots__ = ("_value", "_label")

    def __init__(self, value: Any, label: Label = Label.EMPTY) -> None:
        self._value = value
        self._label = label

    @property
    def label(self) -> Label:
        return self._label

    def peek(self) -> Any:
        """The raw value, for *trusted* code only (the platform uses
        this inside the perimeter; applications get values out only
        through :func:`export`)."""
        return self._value

    # -- taint-propagating operators -------------------------------------

    def _combine(self, other: Any, op: Callable[[Any, Any], Any]
                 ) -> "Labeled":
        if isinstance(other, Labeled):
            return Labeled(op(self._value, other._value),
                           self._label | other._label)
        return Labeled(op(self._value, other), self._label)

    def __add__(self, other):
        return self._combine(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._combine(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._combine(other, lambda a, b: a - b)

    def __mul__(self, other):
        return self._combine(other, lambda a, b: a * b)

    def __truediv__(self, other):
        return self._combine(other, lambda a, b: a / b)

    def __eq__(self, other):
        return self._combine(other, lambda a, b: a == b)

    def __ne__(self, other):
        return self._combine(other, lambda a, b: a != b)

    def __lt__(self, other):
        return self._combine(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._combine(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._combine(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._combine(other, lambda a, b: a >= b)

    def __hash__(self):
        raise ImplicitFlowError(
            "labeled values are unhashable: hashing would leak through "
            "collection placement")

    def __bool__(self) -> bool:
        raise ImplicitFlowError(
            "branching on a labeled value is an implicit flow; "
            "use lselect(cond, then, otherwise)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Labeled({self._value!r}, {self._label!r})"


def lift(value: Any, label: Label = Label.EMPTY) -> Labeled:
    """Wrap a raw value (idempotent on already-labeled values)."""
    if isinstance(value, Labeled):
        return Labeled(value.peek(), value.label | label)
    return Labeled(value, label)


def lmap(fn: Callable[..., T], *args: Any) -> Labeled:
    """Apply ``fn`` to the raw values; the result joins every label."""
    label = Label.EMPTY
    raw = []
    for a in args:
        if isinstance(a, Labeled):
            label = label | a.label
            raw.append(a.peek())
        else:
            raw.append(a)
    return Labeled(fn(*raw), label)


def lselect(cond: Labeled, then: Any, otherwise: Any) -> Labeled:
    """The explicit conditional: pick a branch on a labeled boolean.

    The chosen value's label joins the condition's label — the flow
    from the secret condition into the result is tracked, not hidden.
    """
    if not isinstance(cond, Labeled):
        raise TypeError("lselect condition must be a Labeled boolean")
    picked = then if cond.peek() else otherwise
    return lift(picked, cond.label)


def ljoin(values: Iterable[Any]) -> Label:
    """The join of all labels present in ``values``."""
    label = Label.EMPTY
    for v in values:
        if isinstance(v, Labeled):
            label = label | v.label
    return label


def export(value: Labeled, authority: CapabilitySet) -> Any:
    """Cross the perimeter: return the raw value iff ``authority`` can
    shed every tag on it; raise :class:`SecrecyViolation` otherwise."""
    residue = exportable_tags(value.label, authority)
    if not residue.is_empty():
        raise SecrecyViolation(
            f"value carries tags {sorted(t.tag_id for t in residue)} "
            f"outside the export authority")
    return value.peek()


def declassify(value: Labeled, tags: Label,
               authority: CapabilitySet) -> Labeled:
    """Explicitly shed ``tags`` from a value's label (needs ``t-`` for
    each); the language-level analogue of a declassifier's act."""
    if not tags <= authority.minus_tags:
        missing = tags - authority.minus_tags
        raise SecrecyViolation(
            f"missing '-' authority for tags "
            f"{sorted(t.tag_id for t in missing)}")
    return Labeled(value.peek(), value.label - tags)
