"""Language-level DIFC: the paper's §3.1 'alternate architecture'."""

from .collections import LabeledList
from .values import (ImplicitFlowError, Labeled, declassify, export,
                     lift, ljoin, lmap, lselect)

__all__ = [
    "LabeledList",
    "ImplicitFlowError", "Labeled", "declassify", "export",
    "lift", "ljoin", "lmap", "lselect",
]
