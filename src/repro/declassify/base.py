"""Declassifier framework.

Declassifiers are W5's mechanism for "poking holes" in the security
perimeter (§3.1): small agents a user entrusts with the export
privilege (``t-``) for her data tags.  The paper gives them two
defining characteristics, both enforced by this design:

1. **Data-agnostic.**  A declassifier never sees the data it releases —
   its ``decide`` method receives only a :class:`ReleaseContext`
   (owner, viewer, time, declared kind).  One friends-only declassifier
   therefore works unchanged for photos, blog posts, and profiles,
   exactly as §3.1 requires ("an end-user can use the same declassifier
   for multiple applications").

2. **Small and auditable.**  The framework measures each declassifier's
   source size (:meth:`Declassifier.audit_surface_loc`), which
   experiment M3 compares against full applications to quantify the
   paper's "much smaller than entire applications" claim.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class ReleaseContext:
    """Everything a declassifier may base its decision on.

    Deliberately excludes the data itself; ``kind`` is a free-form
    string ("photo", "blog", "profile") apps may declare, and
    ``now`` is the platform clock (simulated seconds).
    """

    owner: str
    viewer: Optional[str]
    kind: str = ""
    now: float = 0.0
    #: Free-form request attributes (e.g. the requesting app's name).
    attributes: dict[str, Any] = field(default_factory=dict)


class Declassifier:
    """Base class: subclasses override :meth:`decide`.

    ``config`` is the per-user policy state (a friends list, a group
    roster, an embargo date).  The *user* supplies it when granting —
    it is part of her policy, not of any application's data.
    """

    #: Short, stable identifier used in registries and audit records.
    name: str = "abstract"
    #: One-line description shown in the provider's policy web forms.
    description: str = ""
    #: True iff ``decide`` is a pure function of (owner, viewer) and
    #: this object's config — i.e. it ignores ``ctx.now``, ``ctx.kind``,
    #: ``ctx.attributes`` and all external state.  Cacheable decisions
    #: may be memoized by the service's authority cache and invalidated
    #: only on policy-change events; time- or attribute-dependent
    #: declassifiers MUST set this False to opt out (they are then
    #: re-evaluated on every request, preserving ``ReleaseContext.now``
    #: semantics).
    cacheable: bool = True

    def __init__(self, config: Optional[dict[str, Any]] = None) -> None:
        # Snapshot the policy: container values are frozen so later
        # mutation of the caller's objects cannot silently change what
        # the user authorized.
        self.config = {
            key: (frozenset(value) if isinstance(value, (list, set, tuple))
                  else value)
            for key, value in (config or {}).items()
        }

    def decide(self, ctx: ReleaseContext) -> bool:
        """Return True to release the owner's data to the viewer."""
        raise NotImplementedError

    def update_config(self, **changes: Any) -> None:
        """Amend the policy state, applying the same container-freezing
        normalization as the constructor.

        This is the *only* supported way to change a live
        declassifier's policy — platforms route user edits through
        :meth:`repro.platform.provider.Provider.update_declassifier_config`
        so every policy change is explicit and auditable, instead of
        reaching into :attr:`config` from outside.
        """
        for key, value in changes.items():
            self.config[key] = (
                frozenset(value) if isinstance(value, (list, set, tuple))
                else value)

    @classmethod
    def audit_surface_loc(cls) -> int:
        """Logic lines of the decision code (M3 metric): non-blank,
        non-comment, docstrings excluded."""
        from ..core.loc import code_loc
        try:
            source = inspect.getsource(cls)
        except (OSError, TypeError):  # pragma: no cover - builtins only
            return 0
        return code_loc(source)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.config!r})"
