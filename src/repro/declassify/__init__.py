"""Declassifiers: user-granted agents that poke holes in the perimeter."""

from .base import Declassifier, ReleaseContext
from .builtin import (BUILTINS, FriendsOnly, Group, OwnerOnly, Public,
                      TimeEmbargo, ViewerPredicate)
from .combinators import AllOf, AnyOf, Not
from .runtime import KernelDeclassifier, ReleaseRefused
from .service import DeclassificationService, Grant

__all__ = [
    "Declassifier", "ReleaseContext",
    "BUILTINS", "FriendsOnly", "Group", "OwnerOnly", "Public",
    "TimeEmbargo", "ViewerPredicate",
    "AllOf", "AnyOf", "Not",
    "KernelDeclassifier", "ReleaseRefused",
    "DeclassificationService", "Grant",
]
