"""The built-in declassifier library.

These are the "small handful of reputable declassifiers" (§3.1) a
casual W5 user would authorize.  Each is a few lines of decision logic
— the point of the design — and each is exercised by experiment C3
(correctness) and M3 (audit surface).
"""

from __future__ import annotations

from .base import Declassifier, ReleaseContext


class OwnerOnly(Declassifier):
    """The boilerplate policy: data leaves only toward its owner.

    This is the default the provider assigns to all data (§3.1); it is
    also what the gateway enforces with *no* declassifier at all, so
    granting it changes nothing — it exists to make the default
    explicit and testable.
    """

    name = "owner-only"
    description = "Release only to the data's owner (the default)."

    def decide(self, ctx: ReleaseContext) -> bool:
        return ctx.viewer == ctx.owner


class Public(Declassifier):
    """The user opted to publish: release to anyone, even anonymous."""

    name = "public"
    description = "Release to everyone, including anonymous visitors."

    def decide(self, ctx: ReleaseContext) -> bool:
        return True


class FriendsOnly(Declassifier):
    """Release to the owner and the owner's configured friends.

    ``config['friends']`` is the owner's friend list — policy data the
    *user* maintains via provider web forms, not application data (the
    provider cannot read app data, §3.1, but this list belongs to the
    policy layer).
    """

    name = "friends-only"
    description = "Release to the owner's friends list."

    def decide(self, ctx: ReleaseContext) -> bool:
        if ctx.viewer is None:
            return False
        if ctx.viewer == ctx.owner:
            return True
        return ctx.viewer in set(self.config.get("friends", ()))


class Group(Declassifier):
    """Release to a named roster (a club, a team, 'my roommates')."""

    name = "group"
    description = "Release to an explicit roster of usernames."

    def decide(self, ctx: ReleaseContext) -> bool:
        if ctx.viewer is None:
            return False
        if ctx.viewer == ctx.owner:
            return True
        return ctx.viewer in set(self.config.get("members", ()))


class TimeEmbargo(Declassifier):
    """Release to anyone, but only after ``config['release_at']``.

    An "idiosyncratic" policy of the kind §3.1 promises users can
    express: e.g. publish my trip photos after I'm back home.
    """

    name = "time-embargo"
    description = "Public after a configured time, owner-only before."
    #: Reads the platform clock: never cached by the authority oracle.
    cacheable = False

    def decide(self, ctx: ReleaseContext) -> bool:
        if ctx.viewer == ctx.owner:
            return True
        return ctx.now >= float(self.config.get("release_at", float("inf")))


class ViewerPredicate(Declassifier):
    """Escape hatch for fully custom policies: a user-supplied callable.

    ``config['predicate']`` maps (owner, viewer, attributes) to bool.
    This is how Bob's "chameleon profile" hides his Sci-Fi shelf from
    love interests (§2 Examples) — the predicate is his to write, and
    it is still only a few auditable lines.
    """

    name = "viewer-predicate"
    description = "Custom user-supplied release predicate."
    #: An arbitrary callable may consult anything: never cached.
    cacheable = False

    def decide(self, ctx: ReleaseContext) -> bool:
        if ctx.viewer == ctx.owner:
            return True
        predicate = self.config.get("predicate")
        if predicate is None:
            return False
        return bool(predicate(ctx.owner, ctx.viewer, ctx.attributes))


#: Classes a provider ships out of the box, keyed by name.
BUILTINS: dict[str, type[Declassifier]] = {
    cls.name: cls
    for cls in (OwnerOnly, Public, FriendsOnly, Group, TimeEmbargo,
                ViewerPredicate)
}
