"""The declassification service: grants and per-viewer export authority.

A user expresses policy by *granting* a declassifier instance authority
over one of her tags ("use friends-only for my photo tag").  At export
time, the gateway needs one question answered: *which tags may ride out
in a response destined for viewer v?*  This service computes that — the
``authority_for`` oracle the platform plugs into the gateway — by
consulting every grant whose declassifier approves ``v``.

Every positive decision is an audited declassification event; every
negative one is an audited refusal, so experiments can count both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..kernel import Kernel
from ..kernel import audit as A
from ..labels import CapabilitySet, Tag, minus
from .base import Declassifier, ReleaseContext


@dataclass(frozen=True)
class Grant:
    """One user decision: ``declassifier`` may export ``tag``."""

    owner: str
    tag: Tag
    declassifier: Declassifier

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Grant({self.owner}: tag {self.tag.tag_id} via "
                f"{self.declassifier.name})")


class DeclassificationService:
    """Registry of grants + the export-authority oracle."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._grants: list[Grant] = []
        #: Simulated platform clock, advanced by tests/benches.
        self.now: float = 0.0

    # -- policy management (driven by the provider's web forms) ---------

    def grant(self, owner: str, tag: Tag,
              declassifier: Declassifier) -> Grant:
        """Record that ``owner`` entrusts ``declassifier`` with ``tag``.

        The platform must verify separately that ``owner`` actually
        owns ``tag`` (it does, in
        :meth:`repro.platform.provider.Provider.grant_declassifier`).
        """
        g = Grant(owner=owner, tag=tag, declassifier=declassifier)
        self._grants.append(g)
        self.kernel.audit.record(
            A.DECLASSIFY, True, owner,
            f"granted {declassifier.name} authority over tag {tag.tag_id}")
        return g

    def revoke(self, owner: str, tag: Tag,
               declassifier_name: Optional[str] = None) -> int:
        """Remove grants for (owner, tag); returns how many were removed."""
        before = len(self._grants)
        self._grants = [
            g for g in self._grants
            if not (g.owner == owner and g.tag == tag
                    and (declassifier_name is None
                         or g.declassifier.name == declassifier_name))]
        removed = before - len(self._grants)
        if removed:
            self.kernel.audit.record(
                A.DECLASSIFY, True, owner,
                f"revoked {removed} grant(s) on tag {tag.tag_id}")
        return removed

    def grants_for(self, owner: str) -> list[Grant]:
        return [g for g in self._grants if g.owner == owner]

    # -- the oracle ------------------------------------------------------

    def may_release(self, tag: Tag, viewer: Optional[str],
                    kind: str = "", **attributes: Any) -> bool:
        """True iff some grant on ``tag`` approves ``viewer``."""
        for g in self._grants:
            if g.tag != tag:
                continue
            ctx = ReleaseContext(owner=g.owner, viewer=viewer, kind=kind,
                                 now=self.now, attributes=dict(attributes))
            if g.declassifier.decide(ctx):
                self.kernel.audit.record(
                    A.DECLASSIFY, True, g.declassifier.name,
                    f"release tag {tag.tag_id} ({g.owner}) to "
                    f"{viewer or 'anonymous'}")
                return True
        self.kernel.audit.record(
            A.DECLASSIFY, False, "declassify-service",
            f"no grant releases tag {tag.tag_id} to {viewer or 'anonymous'}")
        return False

    def authority_for(self, viewer: Optional[str],
                      own_tags: Iterable[Tag] = (),
                      kind: str = "", **attributes: Any) -> CapabilitySet:
        """The export authority the gateway should use for ``viewer``.

        ``own_tags`` are the viewer's own data tags (always
        exportable to herself — the boilerplate policy); on top of
        those, every granted tag whose declassifier approves ``viewer``
        contributes its ``t-``.
        """
        caps = [minus(t) for t in own_tags]
        for g in self._grants:
            ctx = ReleaseContext(owner=g.owner, viewer=viewer, kind=kind,
                                 now=self.now, attributes=dict(attributes))
            if g.declassifier.decide(ctx):
                caps.append(minus(g.tag))
        return CapabilitySet(caps)
