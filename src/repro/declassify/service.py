"""The declassification service: grants and per-viewer export authority.

A user expresses policy by *granting* a declassifier instance authority
over one of her tags ("use friends-only for my photo tag").  At export
time, the gateway needs one question answered: *which tags may ride out
in a response destined for viewer v?*  This service computes that — the
``authority_for`` oracle the platform plugs into the gateway — by
consulting every grant whose declassifier approves ``v``.

Every positive decision is an audited declassification event; every
negative one is an audited refusal, so experiments can count both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from ..kernel import Kernel
from ..kernel import audit as A
from ..labels import CapabilitySet, Tag, minus
from .base import Declassifier, ReleaseContext


@dataclass(frozen=True)
class Grant:
    """One user decision: ``declassifier`` may export ``tag``."""

    owner: str
    tag: Tag
    declassifier: Declassifier

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Grant({self.owner}: tag {self.tag.tag_id} via "
                f"{self.declassifier.name})")


class DeclassificationService:
    """Registry of grants + the export-authority oracle."""

    def __init__(self, kernel: Kernel,
                 cache_authority: bool = False,
                 max_cache_entries: int = 4096) -> None:
        self.kernel = kernel
        self._grants: list[Grant] = []
        #: Grant indexes — same contents as ``_grants``, keyed for the
        #: two hot lookups (per-owner policy edits, per-tag release
        #: checks).  Within a key, insertion order is preserved, so the
        #: indexed paths visit grants in exactly the order the legacy
        #: full scan would.
        self._by_owner: dict[str, list[Grant]] = {}
        self._by_tag: dict[Tag, list[Grant]] = {}
        #: Grants whose declassifier opted out of caching — always
        #: re-evaluated; kept separate so the hot path never scans the
        #: full grant list.
        self._uncacheable: list[Grant] = []
        #: Simulated platform clock, advanced by tests/benches.  No
        #: authority invalidation needed on advance: time-dependent
        #: declassifiers are ``cacheable = False`` and re-evaluated on
        #: every call.  (Exposed as the :attr:`now` property so clock
        #: advances are journaled — the embargo state is durable.)
        self._now: float = 0.0
        #: Durability hook: ``(op, data)`` per policy mutation (journal).
        self.on_mutate: Optional[Callable[[str, dict], None]] = None
        #: Owners whose grant set changed since the last full checkpoint
        #: (incremental snapshots re-serialize only these).
        self._dirty_owners: set[str] = set()
        #: Memoized per-viewer export authority (the cacheable part).
        self.cache_authority = cache_authority
        self._max_cache_entries = max_cache_entries
        self._authority_memo: dict[Any, CapabilitySet] = {}
        #: Bumped by every authority-changing event; readable by tests.
        self.authority_epoch = 0
        self._stats = {"hits": 0, "misses": 0, "invalidations": 0,
                       "bypasses": 0}

    # -- durability plumbing --------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @now.setter
    def now(self, value: float) -> None:
        self._now = value
        if self.on_mutate is not None:
            self.on_mutate("clock.set", {"now": value})

    def mark_clean(self) -> None:
        """Forget dirty state (a full snapshot was just taken)."""
        self._dirty_owners.clear()

    def dirty_owners(self) -> set[str]:
        return set(self._dirty_owners)

    @staticmethod
    def grant_record(grant: "Grant") -> Optional[dict[str, Any]]:
        """The durable form of ``grant`` — exactly what
        ``snapshot_provider`` persists — or ``None`` when the grant is
        not durable (non-builtin declassifier or non-JSON config)."""
        from .builtin import BUILTINS
        config = {k: (sorted(v) if isinstance(v, frozenset) else v)
                  for k, v in grant.declassifier.config.items()}
        record = {"owner": grant.owner, "tag_id": grant.tag.tag_id,
                  "declassifier": grant.declassifier.name, "config": config}
        try:
            json.dumps(record)
        except TypeError:
            return None
        if grant.declassifier.name not in BUILTINS:
            return None
        return record

    def note_config_update(self, owner: str, tag: Tag, name: str,
                           changes: dict[str, Any]) -> None:
        """Journal a policy-config edit (the callers —
        ``Provider.update_declassifier_config`` and the group roster
        refresh — have already applied it via ``update_config``)."""
        self._dirty_owners.add(owner)
        if self.on_mutate is not None:
            serial = {k: (sorted(v) if isinstance(v, (frozenset, set))
                          else v)
                      for k, v in changes.items()}
            self.on_mutate("grant.config", {
                "owner": owner, "tag_id": tag.tag_id, "name": name,
                "changes": serial})

    # -- authority-cache plumbing ---------------------------------------

    def invalidate_authority(self, reason: str = "") -> None:
        """Drop all memoized export authority.

        Called on every event that can change what some viewer may see:
        grant, revoke, declassifier config update (friendship edits,
        group roster changes route through those).
        """
        self.authority_epoch += 1
        if self._authority_memo:
            self._authority_memo.clear()
            self._stats["invalidations"] += 1

    def authority_stats(self) -> dict[str, int]:
        stats = dict(self._stats)
        stats["entries"] = len(self._authority_memo)
        stats["epoch"] = self.authority_epoch
        return stats

    # -- policy management (driven by the provider's web forms) ---------

    def grant(self, owner: str, tag: Tag,
              declassifier: Declassifier) -> Grant:
        """Record that ``owner`` entrusts ``declassifier`` with ``tag``.

        The platform must verify separately that ``owner`` actually
        owns ``tag`` (it does, in
        :meth:`repro.platform.provider.Provider.grant_declassifier`).
        """
        g = Grant(owner=owner, tag=tag, declassifier=declassifier)
        self._grants.append(g)
        self._by_owner.setdefault(owner, []).append(g)
        self._by_tag.setdefault(tag, []).append(g)
        if not declassifier.cacheable:
            self._uncacheable.append(g)
        self._dirty_owners.add(owner)
        if self.on_mutate is not None:
            record = self.grant_record(g)
            if record is not None:
                self.on_mutate("grant.add", record)
            else:
                self.on_mutate("grant.skip", {
                    "owner": owner, "declassifier": declassifier.name})
        self.invalidate_authority("grant")
        self.kernel.audit.record(
            A.DECLASSIFY, True, owner,
            f"granted {declassifier.name} authority over tag {tag.tag_id}")
        return g

    def revoke(self, owner: str, tag: Tag,
               declassifier_name: Optional[str] = None) -> int:
        """Remove grants for (owner, tag); returns how many were removed."""
        before = len(self._grants)
        self._grants = [
            g for g in self._grants
            if not (g.owner == owner and g.tag == tag
                    and (declassifier_name is None
                         or g.declassifier.name == declassifier_name))]
        removed = before - len(self._grants)
        if removed:
            self._reindex()
            self._dirty_owners.add(owner)
            if self.on_mutate is not None:
                self.on_mutate("grant.revoke", {
                    "owner": owner, "tag_id": tag.tag_id,
                    "name": declassifier_name})
            self.invalidate_authority("revoke")
            self.kernel.audit.record(
                A.DECLASSIFY, True, owner,
                f"revoked {removed} grant(s) on tag {tag.tag_id}")
        return removed

    def _reindex(self) -> None:
        self._by_owner = {}
        self._by_tag = {}
        self._uncacheable = []
        for g in self._grants:
            self._by_owner.setdefault(g.owner, []).append(g)
            self._by_tag.setdefault(g.tag, []).append(g)
            if not g.declassifier.cacheable:
                self._uncacheable.append(g)

    def grants_for(self, owner: str) -> list[Grant]:
        return list(self._by_owner.get(owner, ()))

    def grant_for(self, owner: str,
                  declassifier_name: str) -> Optional[Grant]:
        """The owner's first grant using the named declassifier, if any.

        O(owner's grants) instead of O(all grants) — the lookup the
        provider's policy-edit forms (befriend/unfriend) hit per click.
        """
        for g in self._by_owner.get(owner, ()):
            if g.declassifier.name == declassifier_name:
                return g
        return None

    # -- the oracle ------------------------------------------------------

    def may_release(self, tag: Tag, viewer: Optional[str],
                    kind: str = "", **attributes: Any) -> bool:
        """True iff some grant on ``tag`` approves ``viewer``.

        Served from the per-tag index; the legacy full scan silently
        skipped non-matching tags, so the audit trail is identical.
        """
        for g in self._by_tag.get(tag, ()):
            ctx = ReleaseContext(owner=g.owner, viewer=viewer, kind=kind,
                                 now=self.now, attributes=dict(attributes))
            if g.declassifier.decide(ctx):
                self.kernel.audit.record(
                    A.DECLASSIFY, True, g.declassifier.name,
                    f"release tag {tag.tag_id} ({g.owner}) to "
                    f"{viewer or 'anonymous'}")
                return True
        self.kernel.audit.record(
            A.DECLASSIFY, False, "declassify-service",
            f"no grant releases tag {tag.tag_id} to {viewer or 'anonymous'}")
        return False

    def authority_for(self, viewer: Optional[str],
                      own_tags: Iterable[Tag] = (),
                      kind: str = "", **attributes: Any) -> CapabilitySet:
        """The export authority the gateway should use for ``viewer``.

        ``own_tags`` are the viewer's own data tags (always
        exportable to herself — the boilerplate policy); on top of
        those, every granted tag whose declassifier approves ``viewer``
        contributes its ``t-``.

        With ``cache_authority`` on, the decisions of *cacheable*
        declassifiers (pure functions of viewer + config) are memoized
        per (viewer, own_tags) and invalidated whenever any grant or
        config changes; non-cacheable grants (time embargoes, custom
        predicates) are re-evaluated on every call and merged in, so
        ``ReleaseContext.now`` semantics are untouched.  Calls with a
        ``kind`` or attributes bypass the cache entirely — any
        declassifier may read those.
        """
        return self._authority_for(viewer, own_tags, kind, attributes)

    def _authority_for(self, viewer: Optional[str],
                       own_tags: Iterable[Tag], kind: str,
                       attributes: dict[str, Any]) -> CapabilitySet:
        own_tags = tuple(own_tags)
        cacheable_ok = (self.cache_authority and kind == ""
                        and not attributes)
        if not cacheable_ok:
            if self.cache_authority:
                self._stats["bypasses"] += 1
            return self._compute_authority(self._grants, viewer, own_tags,
                                           kind, attributes)

        key = (viewer, frozenset(own_tags))
        cached = self._authority_memo.get(key)
        uncacheable = self._uncacheable
        if cached is None:
            self._stats["misses"] += 1
            cacheable = [g for g in self._grants if g.declassifier.cacheable]
            cached = self._compute_authority(cacheable, viewer, own_tags,
                                             kind, attributes)
            if len(self._authority_memo) >= self._max_cache_entries:
                self._authority_memo.clear()
            self._authority_memo[key] = cached
        else:
            self._stats["hits"] += 1
        if not uncacheable:
            return cached
        extra = [minus(g.tag) for g in uncacheable
                 if g.declassifier.decide(ReleaseContext(
                     owner=g.owner, viewer=viewer, kind=kind, now=self.now,
                     attributes=dict(attributes)))]
        return cached | extra if extra else cached

    def _compute_authority(self, grants: Iterable[Grant],
                           viewer: Optional[str], own_tags: Iterable[Tag],
                           kind: str,
                           attributes: dict[str, Any]) -> CapabilitySet:
        # the declassifier evaluation loop is the expensive part of the
        # oracle, so the span lives here: memoized authority hits (the
        # steady-state request path) cost no span at all, while every
        # real evaluation — cold cache, bypass, invalidation — shows up
        # in the trace as declass.authority
        grants = tuple(grants)
        with self.kernel.tracer.span("declass.authority",
                                     viewer=viewer or "anonymous",
                                     grants=len(grants)):
            caps = [minus(t) for t in own_tags]
            for g in grants:
                ctx = ReleaseContext(owner=g.owner, viewer=viewer,
                                     kind=kind, now=self.now,
                                     attributes=dict(attributes))
                if g.declassifier.decide(ctx):
                    caps.append(minus(g.tag))
            return CapabilitySet(caps)
