"""Declassifier combinators: composing policies without new code.

Multiple *grants* on a tag release when **any** of them approves
(union semantics — each grant is an independent hole).  Some
idiosyncratic policies (§3.1) need the other direction: "my friends,
but only after the trip embargo" is a conjunction no set of independent
grants can express.  Combinators close the gap while keeping the
auditability story: a combined policy is a tree of already-audited
parts plus a one-line connective.

All combinators are themselves data-agnostic declassifiers, so they
nest arbitrarily: ``AnyOf(Group(...), AllOf(FriendsOnly(...),
TimeEmbargo(...)))``.
"""

from __future__ import annotations

from typing import Iterable

from .base import Declassifier, ReleaseContext


class AllOf(Declassifier):
    """Release only when every child policy approves (conjunction)."""

    name = "all-of"
    description = "Release when ALL component policies approve."

    def __init__(self, *children: Declassifier) -> None:
        super().__init__({})
        if not children:
            raise ValueError("AllOf needs at least one child policy")
        self.children = tuple(children)
        self.cacheable = all(c.cacheable for c in self.children)

    def decide(self, ctx: ReleaseContext) -> bool:
        return all(child.decide(ctx) for child in self.children)

    @classmethod
    def audit_surface_loc(cls) -> int:
        # the connective itself plus its parts, counted once each
        return super().audit_surface_loc()

    def total_audit_surface(self) -> int:
        """Connective + every distinct child policy class."""
        seen: set[type] = set()
        total = type(self).audit_surface_loc()
        for child in self.children:
            total += _child_surface(child, seen)
        return total


class AnyOf(Declassifier):
    """Release when at least one child approves (explicit union)."""

    name = "any-of"
    description = "Release when ANY component policy approves."

    def __init__(self, *children: Declassifier) -> None:
        super().__init__({})
        if not children:
            raise ValueError("AnyOf needs at least one child policy")
        self.children = tuple(children)
        self.cacheable = all(c.cacheable for c in self.children)

    def decide(self, ctx: ReleaseContext) -> bool:
        return any(child.decide(ctx) for child in self.children)

    def total_audit_surface(self) -> int:
        seen: set[type] = set()
        total = type(self).audit_surface_loc()
        for child in self.children:
            total += _child_surface(child, seen)
        return total


class Not(Declassifier):
    """Invert a child policy — except that the owner always passes.

    An owner must never lock *herself* out: the boilerplate policy
    (data exits toward its owner) is not negotiable through policy
    composition, so ``Not`` applies only to non-owner viewers.
    """

    name = "not"
    description = "Release to viewers the child policy would refuse."

    def __init__(self, child: Declassifier) -> None:
        super().__init__({})
        self.child = child
        self.cacheable = child.cacheable

    def decide(self, ctx: ReleaseContext) -> bool:
        if ctx.viewer == ctx.owner:
            return True
        return not self.child.decide(ctx)

    def total_audit_surface(self) -> int:
        return (type(self).audit_surface_loc()
                + _child_surface(self.child, set()))


def _child_surface(child: Declassifier, seen: set[type]) -> int:
    if hasattr(child, "total_audit_surface"):
        return child.total_audit_surface()  # type: ignore[attr-defined]
    cls = type(child)
    if cls in seen:
        return 0
    seen.add(cls)
    return cls.audit_surface_loc()
