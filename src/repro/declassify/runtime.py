"""Kernel-level declassifier processes.

:mod:`repro.declassify.service` answers policy questions for the
gateway; this module runs a declassifier as an actual *confined
process*, demonstrating the full mechanism the paper relies on: the
agent sits inside the perimeter with secrecy ``{t}`` holding exactly
one privilege — ``t-`` — and moves approved data from tainted space to
clean space through its declared endpoints.  Everything it does passes
the same kernel checks as any other process; its power comes only from
the capability the owner granted.
"""

from __future__ import annotations

from typing import Any, Optional

from ..kernel import Endpoint, Kernel, Process, RECV, SEND
from ..labels import CapabilitySet, Label, Tag, minus
from .base import Declassifier, ReleaseContext


class ReleaseRefused(Exception):
    """The declassifier's policy said no; nothing crossed."""


class KernelDeclassifier:
    """A declassifier running as a kernel process.

    The process is spawned tainted with ``tag`` and holding ``tag-``,
    with two endpoints:

    * ``inbox`` — receive, labeled ``{tag}``: tainted producers (apps
      processing the owner's data) send release requests here;
    * ``outlet`` — send, labeled ``{}``: approved payloads leave here,
      clean, toward whatever endpoint the platform designates (a
      gateway buffer, another user's app, a peer provider's importer).

    The *only* bridge between the two is :meth:`pump`, which consults
    the policy object.  The policy never receives the payload — the
    data-agnostic property, enforced structurally.
    """

    def __init__(self, kernel: Kernel, tag: Tag, policy: Declassifier,
                 owner: str, clock: Optional[Any] = None) -> None:
        self.kernel = kernel
        self.tag = tag
        self.policy = policy
        self.owner = owner
        self.clock = clock
        self.process: Process = kernel.spawn_trusted(
            f"declassifier:{policy.name}:{owner}",
            slabel=Label([tag]),
            caps=CapabilitySet([minus(tag)]),
            owner_user=owner)
        self.inbox: Endpoint = kernel.create_endpoint(
            self.process, direction=RECV, name="inbox")
        self.outlet: Endpoint = kernel.create_endpoint(
            self.process, slabel=Label.EMPTY, direction=SEND, name="outlet")

    def _now(self) -> float:
        if self.clock is None:
            return 0.0
        return float(self.clock() if callable(self.clock) else self.clock)

    def pump(self, viewer: Optional[str], destination: Endpoint,
             kind: str = "", **attributes: Any) -> Any:
        """Take one queued request from the inbox and, if policy
        approves ``viewer``, forward its payload to ``destination``
        through the clean outlet.  Returns the forwarded payload.

        Raises :class:`ReleaseRefused` (and forwards nothing) when the
        policy declines; the refused payload is dropped from the queue
        — a declassifier must never hold secrets it has declined to
        release.
        """
        with self.kernel.tracer.span(
                "declass.pump", policy=self.policy.name,
                viewer=viewer or "anonymous"):
            return self._pump(viewer, destination, kind, attributes)

    def _pump(self, viewer: Optional[str], destination: Endpoint,
              kind: str, attributes: dict[str, Any]) -> Any:
        msg = self.kernel.receive(self.process, endpoint=self.inbox)
        ctx = ReleaseContext(owner=self.owner, viewer=viewer, kind=kind,
                             now=self._now(), attributes=dict(attributes))
        if not self.policy.decide(ctx):
            raise ReleaseRefused(
                f"{self.policy.name} refused release of {self.owner}'s "
                f"data to {viewer or 'anonymous'}")
        return self.kernel.send(self.process, self.outlet, destination,
                                msg.payload, topic="declassified").payload

    def pending(self) -> int:
        return self.kernel.pending(self.process)
