"""The labeled tuple store — W5's replacement for shared SQL.

The paper flags SQL as a problem twice: malicious queries can lock the
database for everyone (§3.5 "Performance"), and "the SQL interface to
databases can leak information implicitly and thus needs to be replaced
under W5" (§3.5 "Covert Channels").  This module is that replacement:

* every row carries its own secrecy/integrity labels, checked with the
  same guards as files (:mod:`repro.core.access`);
* queries are **label-filtered**: rows the caller may not read are
  silently omitted, so result *presence, absence, count and error
  behaviour* are all independent of invisible data — the read-back
  covert channel is closed by construction (demonstrated head-to-head
  in experiment C10 against a fail-stop variant that leaks one bit per
  query);
* every operation charges the caller's query budget through the kernel
  resource hook, which is how a provider keeps one developer's hostile
  query from starving the cluster (experiment C9).

The query language is deliberately tiny — equality matches plus an
optional predicate — because a full SQL engine adds nothing to the
security argument.  Equality lookups use hash indexes declared at
table-creation time.

Label partitions
----------------

A W5 table with 100k rows typically holds only tens of *distinct*
``(slabel, ilabel)`` pairs — one per user/app sharing contract, the
structure Flume's label algebra and HiStar's category model predict.
:class:`Table` therefore physically groups rows into **partitions**
keyed by that pair, and the default engine
(``LabeledStore(kernel, partitioned=True)``) resolves visibility *once
per partition* against the caller's epoch-guarded
:class:`~repro.labels.FlowCache` verdict: invisible partitions are
skipped wholesale, the ``db_rows_scanned`` charge is batched into one
call per partition, and only rows that survive the where/predicate
filter are snapshotted.  Query label cost scales with distinct labels,
not rows (experiment M9), while every observable — results, audit
stream, resource-charge totals, ``pad_scan_to`` padding — is
byte-identical to the naive per-row engine, which stays available as
``partitioned=False`` (the benchmark baseline and the differential-test
oracle in ``tests/db/test_partition_differential.py``).
"""

from __future__ import annotations

import copy
import itertools
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..core import access
from ..kernel import Kernel, Process
from ..kernel import audit as A
from ..labels import IntegrityViolation, Label, SecrecyViolation
from .errors import NoSuchRow, NoSuchTable, SchemaError, TableExists

Predicate = Callable[[dict[str, Any]], bool]

#: Sentinel namespacing the slot-aligned entries inside a table's
#: ``_cand_cache`` so they can never collide with an index choice key.
_ARRAYS = object()

#: A partition key: the interned (slabel, ilabel) pair of its rows.
PartitionKey = "tuple[Label, Label]"


@dataclass
class Row:
    """One labeled tuple."""

    row_id: int
    values: dict[str, Any]
    slabel: Label
    ilabel: Label
    version: int = 1
    #: Cached "all values are immutable scalars" verdict; None = not
    #: yet computed, recomputed lazily after every update.
    _flat: Optional[bool] = field(default=None, repr=False, compare=False)

    #: Strictly immutable leaf types only — a tuple/frozenset may nest
    #: a mutable object, so containers always take the deepcopy path.
    _FLAT_TYPES = (type(None), bool, int, float, complex, str, bytes)

    def partition_key(self) -> tuple[Label, Label]:
        return (self.slabel, self.ilabel)

    def snapshot(self) -> dict[str, Any]:
        """A defensive copy handed to callers: rows are store-owned,
        and a shared nested list would let a reader mutate storage past
        the write checks.  Rows of immutable scalars — the common case
        — take a shallow ``dict`` copy (the values cannot be mutated
        through it); anything nested still gets the full deepcopy."""
        if self._flat is None:
            self._flat = all(
                type(v) in self._FLAT_TYPES for v in self.values.values())
        if self._flat:
            return dict(self.values)
        return copy.deepcopy(self.values)


@dataclass
class Table:
    """A named collection of rows plus its hash indexes.

    Rows are physically grouped into label **partitions** (one per
    distinct ``(slabel, ilabel)`` pair), and the hash indexes are
    partition-aware: ``column → value → partition → row ids``.  Both
    structures are maintained by :meth:`index_add`/:meth:`index_remove`
    so every caller that kept the flat index consistent keeps the
    partitions consistent too.

    ``pad_scan_to`` closes the residual timing channel of full scans
    (experiment C10b): when set, every unindexed query is charged as
    if it touched at least that many rows, so query cost no longer
    reveals how much *invisible* data the table holds.  The provider
    pays the padding in wasted work — the classic covert-channel
    bandwidth/performance trade.
    """

    name: str
    indexed_columns: tuple[str, ...] = ()
    pad_scan_to: Optional[int] = None
    rows: dict[int, Row] = field(default_factory=dict)
    # (slabel, ilabel) -> row id -> row (the physical label grouping)
    partitions: dict[tuple[Label, Label], dict[int, Row]] = field(
        default_factory=dict)
    # column -> value -> partition key -> set of row ids
    indexes: dict[str, dict[Any, dict[tuple[Label, Label], set[int]]]] = \
        field(default_factory=dict)
    #: Memoized sorted candidate-id lists per (index choice) — the
    #: partitioned scan needs ids in row-id order every query, and
    #: re-sorting an unchanged bucket per request is pure overhead.
    #: Any membership change clears it (labels are immutable, so
    #: updates that move no index bucket leave candidates intact).
    _cand_cache: dict = field(default_factory=dict, repr=False,
                              compare=False)

    def __post_init__(self) -> None:
        for col in self.indexed_columns:
            self.indexes.setdefault(col, {})

    # -- index + partition maintenance (store-internal) ----------------

    def index_add(self, row: Row) -> None:
        if self._cand_cache:
            self._cand_cache.clear()
        pkey = row.partition_key()
        self.partitions.setdefault(pkey, {})[row.row_id] = row
        for col, idx in self.indexes.items():
            if col in row.values:
                idx.setdefault(row.values[col], {}) \
                   .setdefault(pkey, set()).add(row.row_id)

    def index_remove(self, row: Row) -> None:
        if self._cand_cache:
            self._cand_cache.clear()
        pkey = row.partition_key()
        part = self.partitions.get(pkey)
        if part is not None:
            part.pop(row.row_id, None)
            if not part:
                del self.partitions[pkey]
        for col, idx in self.indexes.items():
            if col in row.values:
                bucket = idx.get(row.values[col])
                if bucket:
                    ids = bucket.get(pkey)
                    if ids:
                        ids.discard(row.row_id)
                        if not ids:
                            del bucket[pkey]
                    if not bucket:
                        del idx[row.values[col]]


class LabeledStore:
    """A multi-table store enforcing per-row labels on every operation.

    ``partitioned`` selects the engine: ``True`` (default) resolves
    visibility once per label partition; ``False`` is the naive per-row
    oracle with identical observable behaviour.
    """

    def __init__(self, kernel: Kernel, partitioned: bool = True,
                 batch_charges: bool = True,
                 verdict_slots: bool = True) -> None:
        self.kernel = kernel
        self.partitioned = partitioned
        #: M14: fuse the per-partition ``db_rows_scanned`` charges of
        #: one scan into a single sequential-equivalent ``charge_many``.
        self.batch_charges = batch_charges
        #: M14: planned scans index a dense verdict list by small-int
        #: partition slot instead of probing a dict per partition.
        self.verdict_slots = verdict_slots
        #: Store-wide partition-slot registry: (slabel, ilabel) -> the
        #: small int the dense verdict rows are indexed by.  Assigned
        #: on first sight and never recycled (labels are interned).
        self._slots: dict[tuple[Label, Label], int] = {}
        self._tables: dict[str, Table] = {}
        self._row_ids = itertools.count(1)
        #: Partition-scan observability (read via :meth:`stats`).
        self._stats = {"partitions_visible": 0, "partitions_skipped": 0,
                       "rows_skipped": 0, "batched_charges": 0}
        #: Durability hook: ``(op, data)`` per mutation (journal).
        self.on_mutate: Optional[Callable[[str, dict], None]] = None
        #: O(dirty) snapshot bookkeeping since the last full checkpoint:
        #: per-table inserted/updated row ids and removed row ids, plus
        #: catalog-level created/dropped table names.
        self._dirty_rows: dict[str, set[int]] = {}
        self._removed_rows: dict[str, set[int]] = {}
        self._created_tables: set[str] = set()
        self._dropped_tables: set[str] = set()

    # -- durability bookkeeping ----------------------------------------

    def mark_clean(self) -> None:
        """Forget dirty state (a full snapshot was just taken)."""
        self._dirty_rows.clear()
        self._removed_rows.clear()
        self._created_tables.clear()
        self._dropped_tables.clear()

    def dirty_state(self) -> dict[str, Any]:
        return {
            "dirty_rows": {t: set(ids)
                           for t, ids in self._dirty_rows.items() if ids},
            "removed_rows": {t: set(ids)
                             for t, ids in self._removed_rows.items() if ids},
            "created_tables": set(self._created_tables),
            "dropped_tables": set(self._dropped_tables),
        }

    def _note_row(self, table_name: str, row_id: int) -> None:
        self._dirty_rows.setdefault(table_name, set()).add(row_id)
        removed = self._removed_rows.get(table_name)
        if removed:
            removed.discard(row_id)

    def _note_removed(self, table_name: str, row_id: int) -> None:
        self._removed_rows.setdefault(table_name, set()).add(row_id)
        dirty = self._dirty_rows.get(table_name)
        if dirty:
            dirty.discard(row_id)

    def stats(self) -> dict[str, Any]:
        """Partition hit/skip counters for metrics and benchmarks."""
        return {"partitioned": self.partitioned, **self._stats}

    def snapshot(self) -> dict[str, Any]:
        """:class:`~repro.core.snapshot.Snapshotable` — serialize every
        table with per-row labels (restore with
        :func:`repro.db.restore_store`)."""
        from .persist import snapshot_store
        return snapshot_store(self)

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def create_table(self, process: Process, name: str,
                     indexes: Iterable[str] = (),
                     pad_scan_to: Optional[int] = None) -> Table:
        """Create a table.  The catalog itself is public (table names
        must not depend on secrets, or their existence would leak)."""
        self.kernel.resources.charge(process, "db_queries", 1)
        if name in self._tables:
            raise TableExists(name)
        table = Table(name=name, indexed_columns=tuple(indexes),
                      pad_scan_to=pad_scan_to)
        self._tables[name] = table
        self._created_tables.add(name)
        self._dropped_tables.discard(name)
        if self.on_mutate is not None:
            self.on_mutate("db.create_table", {
                "name": name, "indexes": list(table.indexed_columns),
                "pad_scan_to": pad_scan_to})
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"create table {name}")
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTable(name) from None

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, process: Process, name: str) -> None:
        """Drop a table; requires write access to every remaining row."""
        table = self.table(name)
        for row in table.rows.values():
            access.check_write(process, row.slabel, row.ilabel,
                               f"{name}#{row.row_id}",
                               cache=self.kernel.flow_cache,
                               category="db.write")
        del self._tables[name]
        self._dropped_tables.add(name)
        self._created_tables.discard(name)
        self._dirty_rows.pop(name, None)
        self._removed_rows.pop(name, None)
        if self.on_mutate is not None:
            self.on_mutate("db.drop_table", {"name": name})
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"drop table {name}")

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert(self, process: Process, table_name: str,
               values: dict[str, Any], slabel: Optional[Label] = None,
               ilabel: Optional[Label] = None) -> int:
        """Insert a row; labels default to the writer's labels.

        Like file creation, the chosen labels are checked as a write:
        a tainted process cannot insert into a less-tainted row.
        """
        with self.kernel.tracer.detail("db.insert", table=table_name):
            return self._insert(process, table_name, values, slabel, ilabel)

    def _insert(self, process: Process, table_name: str,
                values: dict[str, Any], slabel: Optional[Label],
                ilabel: Optional[Label]) -> int:
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        if not isinstance(values, dict):
            raise SchemaError("row values must be a dict")
        row = Row(row_id=next(self._row_ids),
                  values=copy.deepcopy(values),
                  slabel=process.slabel if slabel is None else slabel,
                  ilabel=process.ilabel if ilabel is None else ilabel)
        try:
            access.check_write(process, row.slabel, row.ilabel,
                               f"{table_name}#new",
                               cache=self.kernel.flow_cache,
                               category="db.write")
        except (SecrecyViolation, IntegrityViolation):
            self.kernel.audit.record(A.DB_QUERY, False, process.name,
                                     f"insert {table_name} refused")
            raise
        self.kernel.resources.charge(process, "db_rows", 1)
        table.rows[row.row_id] = row
        table.index_add(row)
        self._note_row(table_name, row.row_id)
        if self.on_mutate is not None:
            self.on_mutate("db.insert", {
                "table": table_name, "row_id": row.row_id,
                "values": row.values,
                "slabel": sorted(t.tag_id for t in row.slabel),
                "ilabel": sorted(t.tag_id for t in row.ilabel)})
        self.kernel.audit.record_lazy(A.DB_QUERY, True, process.name,
                                      "insert %s#%d",
                                      (table_name, row.row_id))
        return row.row_id

    def update(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]] = None,
               predicate: Optional[Predicate] = None,
               changes: Optional[dict[str, Any]] = None,
               plan: Optional[Any] = None) -> int:
        """Update every *visible and writable* matching row.

        Rows the caller cannot read are silently skipped (they are not
        part of the caller's world); rows it can read but not write
        raise — failing to update data you can see is an honest error,
        not a covert channel.  Returns the number of rows updated.
        """
        with self.kernel.tracer.detail("db.update", table=table_name):
            return self._update(process, table_name, where, predicate,
                                changes, plan)

    def _update(self, process: Process, table_name: str,
                where: Optional[dict[str, Any]],
                predicate: Optional[Predicate],
                changes: Optional[dict[str, Any]],
                plan: Optional[Any] = None) -> int:
        if changes is None:
            raise SchemaError("update requires changes")
        table = self.table(table_name)
        # All-scalar change sets share one hoisted copy; nested values
        # still get a per-row deepcopy so rows never alias each other.
        flat_changes = all(type(v) in Row._FLAT_TYPES
                           for v in changes.values())
        hoisted = dict(changes) if flat_changes else None
        # Labels never change under update, so partition membership is
        # stable; the index round-trip is only needed when an indexed
        # column's value may move buckets.
        touches_index = any(col in table.indexes for col in changes)

        touched: list[int] = []

        def apply(row: Row) -> None:
            if touches_index:
                table.index_remove(row)
            if flat_changes:
                row.values.update(hoisted)
                if row._flat is not True:
                    row._flat = None  # re-derive lazily
            else:
                row.values.update(copy.deepcopy(changes))
                row._flat = False  # a container was just written
            row.version += 1
            if touches_index:
                table.index_add(row)
            self._note_row(table_name, row.row_id)
            touched.append(row.row_id)

        updated = 0
        if self.partitioned:
            write_verdicts: dict[tuple[Label, Label], bool] = {}
            for row in self._matching_rows_partitioned(
                    process, table, where, predicate, plan):
                pkey = row.partition_key()
                allowed = write_verdicts.get(pkey)
                if allowed is None:
                    allowed = access.writable(
                        process, row.slabel, row.ilabel,
                        cache=self.kernel.flow_cache, category="db.write")
                    write_verdicts[pkey] = allowed
                if not allowed:
                    self._refuse_write(process, row, table_name, "update")
                apply(row)
                updated += 1
        else:
            for row in self._candidate_rows(process, table, where):
                if not access.readable(process, row.slabel, row.ilabel,
                                       cache=self.kernel.flow_cache,
                                       category="db.read"):
                    continue
                if not _matches(row, where, predicate):
                    continue
                try:
                    access.check_write(process, row.slabel, row.ilabel,
                                       f"{table_name}#{row.row_id}",
                                       cache=self.kernel.flow_cache,
                                       category="db.write")
                except (SecrecyViolation, IntegrityViolation):
                    self.kernel.audit.record(
                        A.DB_QUERY, False, process.name,
                        f"update {table_name}#{row.row_id} refused")
                    raise
                apply(row)
                updated += 1
        if touched and self.on_mutate is not None:
            self.on_mutate("db.update", {
                "table": table_name, "rows": sorted(touched),
                "changes": changes})
        self.kernel.audit.record_lazy(A.DB_QUERY, True, process.name,
                                      "update %s (%d rows)",
                                      (table_name, updated))
        return updated

    def delete(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]] = None,
               predicate: Optional[Predicate] = None,
               plan: Optional[Any] = None) -> int:
        """Delete every visible and writable matching row (count returned)."""
        with self.kernel.tracer.detail("db.delete", table=table_name):
            return self._delete(process, table_name, where, predicate, plan)

    def _delete(self, process: Process, table_name: str,
                where: Optional[dict[str, Any]],
                predicate: Optional[Predicate],
                plan: Optional[Any] = None) -> int:
        table = self.table(table_name)
        doomed = []
        if self.partitioned:
            write_verdicts: dict[tuple[Label, Label], bool] = {}
            for row in self._matching_rows_partitioned(
                    process, table, where, predicate, plan):
                pkey = row.partition_key()
                allowed = write_verdicts.get(pkey)
                if allowed is None:
                    allowed = access.writable(
                        process, row.slabel, row.ilabel,
                        cache=self.kernel.flow_cache, category="db.write")
                    write_verdicts[pkey] = allowed
                if not allowed:
                    self._refuse_write(process, row, table_name, "delete")
                doomed.append(row)
        else:
            for row in self._candidate_rows(process, table, where):
                if not access.readable(process, row.slabel, row.ilabel,
                                       cache=self.kernel.flow_cache,
                                       category="db.read"):
                    continue
                if not _matches(row, where, predicate):
                    continue
                try:
                    access.check_write(process, row.slabel, row.ilabel,
                                       f"{table_name}#{row.row_id}",
                                       cache=self.kernel.flow_cache,
                                       category="db.write")
                except (SecrecyViolation, IntegrityViolation):
                    self.kernel.audit.record(
                        A.DB_QUERY, False, process.name,
                        f"delete {table_name}#{row.row_id} refused")
                    raise
                doomed.append(row)
        for row in doomed:
            table.index_remove(row)
            del table.rows[row.row_id]
            self._note_removed(table_name, row.row_id)
        if doomed and self.on_mutate is not None:
            self.on_mutate("db.delete", {
                "table": table_name,
                "rows": sorted(r.row_id for r in doomed)})
        self.kernel.audit.record_lazy(A.DB_QUERY, True, process.name,
                                      "delete %s (%d rows)",
                                      (table_name, len(doomed)))
        return len(doomed)

    def purge_rows(self, table_name: str, row_ids: Iterable[int]) -> int:
        """Provider cold-path removal: drop rows by id with *no* label
        checks, charges, or audit (account deletion reaches past the
        departed user's labels by design).  Journaled so recovery
        reproduces the purge.
        """
        table = self.table(table_name)
        purged = []
        for rid in row_ids:
            row = table.rows.get(rid)
            if row is None:
                continue
            table.index_remove(row)
            del table.rows[rid]
            self._note_removed(table_name, rid)
            purged.append(rid)
        if purged and self.on_mutate is not None:
            self.on_mutate("db.purge", {
                "table": table_name, "rows": sorted(purged)})
        return len(purged)

    # -- replay installers (journal recovery only) ---------------------

    def install_table(self, name: str, indexes: Iterable[str] = (),
                      pad_scan_to: Optional[int] = None) -> Table:
        """Re-create a table during replay (no charges, no checks)."""
        table = Table(name=name, indexed_columns=tuple(indexes),
                      pad_scan_to=pad_scan_to)
        self._tables[name] = table
        self._created_tables.add(name)
        self._dropped_tables.discard(name)
        return table

    def install_row(self, table_name: str, row_id: int,
                    values: dict[str, Any], slabel: Label,
                    ilabel: Label) -> Row:
        """Re-insert a row with a *known* id during replay; keeps the
        id counter ahead of every installed id."""
        table = self.table(table_name)
        row = Row(row_id=row_id, values=values, slabel=slabel,
                  ilabel=ilabel)
        table.rows[row_id] = row
        table.index_add(row)
        self._note_row(table_name, row_id)
        nxt = next(self._row_ids)
        self._row_ids = itertools.count(max(nxt, row_id + 1))
        return row

    def apply_changes(self, table_name: str, row_ids: Iterable[int],
                      changes: dict[str, Any]) -> None:
        """Replay one journaled update: same physical effect as
        :meth:`update` on exactly those rows."""
        table = self.table(table_name)
        touches_index = any(col in table.indexes for col in changes)
        for rid in row_ids:
            row = table.rows.get(rid)
            if row is None:
                continue
            if touches_index:
                table.index_remove(row)
            row.values.update(copy.deepcopy(changes))
            row._flat = None
            row.version += 1
            if touches_index:
                table.index_add(row)
            self._note_row(table_name, rid)

    def remove_rows(self, table_name: str, row_ids: Iterable[int]) -> None:
        """Replay one journaled delete/purge (no checks, no journal)."""
        table = self.table(table_name)
        for rid in row_ids:
            row = table.rows.get(rid)
            if row is None:
                continue
            table.index_remove(row)
            del table.rows[rid]
            self._note_removed(table_name, rid)

    def drop_table_raw(self, name: str) -> None:
        """Replay one journaled drop (no checks, no journal)."""
        self._tables.pop(name, None)
        self._dropped_tables.add(name)
        self._created_tables.discard(name)
        self._dirty_rows.pop(name, None)
        self._removed_rows.pop(name, None)

    def _refuse_write(self, process: Process, row: Row, table_name: str,
                      verb: str) -> None:
        """Re-derive the precise write violation for ``row`` (the
        partition verdict said no), audit it, and raise — diagnostics
        byte-identical to the naive per-row engine's."""
        what = f"{table_name}#{row.row_id}"
        try:
            access.check_write(process, row.slabel, row.ilabel, what,
                               cache=self.kernel.flow_cache,
                               category="db.write")
        except (SecrecyViolation, IntegrityViolation):
            self.kernel.audit.record(A.DB_QUERY, False, process.name,
                                     f"{verb} {what} refused")
            raise
        raise AssertionError(
            f"partition verdict and decision procedure disagree on {what}")

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def select(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]] = None,
               predicate: Optional[Predicate] = None,
               limit: Optional[int] = None,
               plan: Optional[Any] = None) -> list[dict[str, Any]]:
        """Label-filtered query: returns copies of visible matching rows.

        The result is *identical* to what it would be if invisible rows
        did not exist — the covert-channel-free semantics.  ``plan`` is
        an optional :class:`~repro.platform.plans.RequestPlan` whose
        value-keyed verdict table answers partition visibility without
        the pid-keyed flow cache (M12); it never changes which rows are
        visible, only where the verdict is remembered.
        """
        with self.kernel.tracer.detail("db.select", table=table_name):
            return self._select(process, table_name, where, predicate,
                                limit, plan)

    def _select(self, process: Process, table_name: str,
                where: Optional[dict[str, Any]],
                predicate: Optional[Predicate],
                limit: Optional[int],
                plan: Optional[Any] = None) -> list[dict[str, Any]]:
        table = self.table(table_name)
        if self.partitioned:
            # batch engine: the query charge rides in the scan's
            # charge_many as the first item — sequential-equivalent,
            # since a loop of charges would apply it first anyway
            if not self.batch_charges:
                self.kernel.resources.charge(process, "db_queries", 1)
            matches, scanned = self._scan_partitioned(
                process, table, where, predicate, limit, plan)
            out = [row.snapshot() for row in matches]
        else:
            self.kernel.resources.charge(process, "db_queries", 1)
            matches, scanned = self._scan_naive(
                process, table, where, predicate, limit)
            out = [row.snapshot() for row in matches]
        self._pad_scan(process, table, where, scanned)
        self.kernel.audit.record_lazy(A.DB_QUERY, True, process.name,
                                      "select %s (%d rows)",
                                      (table_name, len(out)))
        return out

    def select_failstop(self, process: Process, table_name: str,
                        where: Optional[dict[str, Any]] = None,
                        predicate: Optional[Predicate] = None) -> list[dict[str, Any]]:
        """The *rejected* design (DESIGN.md §6): raise if any matching
        row is unreadable.  Exists so experiment C10 can measure the
        covert channel this semantics opens (1 bit per query).  Not
        part of the supported API surface for applications.
        """
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        out: list[dict[str, Any]] = []
        for row in self._candidate_rows(process, table, where):
            if not _matches(row, where, predicate):
                continue
            access.check_read(process, row.slabel, row.ilabel,
                              f"{table_name}#{row.row_id}",
                              cache=self.kernel.flow_cache,
                              category="db.read")
            out.append(row.snapshot())
        return out

    def count(self, process: Process, table_name: str,
              where: Optional[dict[str, Any]] = None,
              predicate: Optional[Predicate] = None,
              plan: Optional[Any] = None) -> int:
        """Label-filtered count (same visibility rule as select).

        Shares the scan core with :meth:`select` but never snapshots a
        row — counting costs no copies.  Charges and audit stream are
        identical to the equivalent ``select`` (it audits as one, the
        historical record shape).
        """
        with self.kernel.tracer.detail("db.count", table=table_name):
            return self._count(process, table_name, where, predicate, plan)

    def _count(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]],
               predicate: Optional[Predicate],
               plan: Optional[Any] = None) -> int:
        table = self.table(table_name)
        if self.partitioned:
            if not self.batch_charges:
                self.kernel.resources.charge(process, "db_queries", 1)
            matches, scanned = self._scan_partitioned(
                process, table, where, predicate, None, plan)
        else:
            self.kernel.resources.charge(process, "db_queries", 1)
            matches, scanned = self._scan_naive(
                process, table, where, predicate, None)
        self._pad_scan(process, table, where, scanned)
        self.kernel.audit.record_lazy(A.DB_QUERY, True, process.name,
                                      "select %s (%d rows)",
                                      (table_name, len(matches)))
        return len(matches)

    def get(self, process: Process, table_name: str, row_id: int) -> dict[str, Any]:
        """Fetch one visible row by id; invisible ids read as missing."""
        with self.kernel.tracer.detail("db.get", table=table_name):
            return self._get(process, table_name, row_id)

    def _get(self, process: Process, table_name: str,
             row_id: int) -> dict[str, Any]:
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        row = table.rows.get(row_id)
        if row is None or not access.readable(
                process, row.slabel, row.ilabel,
                cache=self.kernel.flow_cache, category="db.read"):
            raise NoSuchRow(f"{table_name}#{row_id}")
        return row.snapshot()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _scan_naive(self, process: Process, table: Table,
                    where: Optional[dict[str, Any]],
                    predicate: Optional[Predicate],
                    limit: Optional[int]) -> tuple[list[Row], int]:
        """The per-row oracle: one charge, one verdict per candidate."""
        out: list[Row] = []
        scanned = 0
        for row in self._candidate_rows(process, table, where):
            scanned += 1
            self.kernel.resources.charge(process, "db_rows_scanned", 1)
            if not access.readable(process, row.slabel, row.ilabel,
                                   cache=self.kernel.flow_cache,
                                   category="db.read"):
                continue
            if not _matches(row, where, predicate):
                continue
            out.append(row)
            if limit is not None and len(out) >= limit:
                break
        return out, scanned

    def _scan_partitioned(self, process: Process, table: Table,
                          where: Optional[dict[str, Any]],
                          predicate: Optional[Predicate],
                          limit: Optional[int],
                          plan: Optional[Any] = None
                          ) -> tuple[list[Row], int]:
        """One visibility verdict and one batched charge per partition.

        Returns exactly the rows (in row-id order, honoring ``limit``)
        and the scanned-row total the naive engine would produce; the
        ``db_rows_scanned`` charges land in one call per partition, and
        with a ``limit`` each partition is charged only up to the
        naive engine's stopping point (a bisect, not a walk).
        """
        stats = self._stats
        matches: list[Row] = []
        rows = table.rows
        idlists: Any
        if plan is not None and self.verdict_slots:
            # Array-backed verdict slots (M14): one list index per
            # partition in the inner loop instead of a dict probe.
            pkeys, slots, idlists, prechecked = \
                self._partition_arrays(table, where)
            w = None if prechecked else where
            vrow = plan.read_verdict_row(process, pkeys, slots)
            for i, ids in enumerate(idlists):
                if not vrow[slots[i]]:
                    stats["partitions_skipped"] += 1
                    stats["rows_skipped"] += len(ids)
                    continue
                stats["partitions_visible"] += 1
                for rid in ids:
                    row = rows.get(rid)
                    if row is not None and _matches(row, w, predicate):
                        matches.append(row)
        else:
            parts = self._partition_candidates(table, where)
            if plan is not None:
                # Plan verdicts are keyed by the process's *label
                # state*, so the fresh process a tainted request
                # spawned still hits.
                verdicts = plan.read_verdicts(process, parts)
            else:
                verdicts = access.readable_pairs(process, list(parts),
                                                 cache=self.kernel.flow_cache,
                                                 category="db.read")
            for pkey, ids in parts.items():
                if not verdicts[pkey]:
                    stats["partitions_skipped"] += 1
                    stats["rows_skipped"] += len(ids)
                    continue
                stats["partitions_visible"] += 1
                for rid in ids:
                    row = rows.get(rid)
                    if row is not None and _matches(row, where, predicate):
                        matches.append(row)
            idlists = parts.values()
        matches.sort(key=lambda r: r.row_id)
        resources = self.kernel.resources
        batch = self.batch_charges
        if limit is not None and matches:
            # The naive loop breaks after appending its limit-th match
            # (with limit < 1 it still appends one row first), so rows
            # past that match are never charged.
            cap = max(limit, 1)
            if len(matches) >= cap:
                matches = matches[:cap]
                cutoff = matches[-1].row_id
                scanned = 0
                if batch:
                    items = [("db_queries", 1.0)]
                    for ids in idlists:
                        n = bisect_right(ids, cutoff)
                        if n:
                            items.append(("db_rows_scanned", n))
                        scanned += n
                    resources.charge_many(process, items)
                    stats["batched_charges"] += len(items)
                    return matches, scanned
                for ids in idlists:
                    n = bisect_right(ids, cutoff)
                    if n:
                        resources.charge(process, "db_rows_scanned", n)
                        stats["batched_charges"] += 1
                    scanned += n
                return matches, scanned
        scanned = 0
        if batch:
            items = [("db_queries", 1.0)]
            for ids in idlists:
                n = len(ids)
                if n:
                    items.append(("db_rows_scanned", n))
                scanned += n
            resources.charge_many(process, items)
            stats["batched_charges"] += len(items)
            return matches, scanned
        for ids in idlists:
            if ids:
                resources.charge(process, "db_rows_scanned", len(ids))
                stats["batched_charges"] += 1
            scanned += len(ids)
        return matches, scanned

    def _matching_rows_partitioned(self, process: Process, table: Table,
                                   where: Optional[dict[str, Any]],
                                   predicate: Optional[Predicate],
                                   plan: Optional[Any] = None
                                   ) -> list[Row]:
        """Visible matching rows in row-id order, one read verdict per
        partition (the update/delete front half — no scan charges, the
        historical write-path behaviour)."""
        stats = self._stats
        matches: list[Row] = []
        rows = table.rows
        if plan is not None and self.verdict_slots:
            pkeys, slots, idlists, prechecked = \
                self._partition_arrays(table, where)
            w = None if prechecked else where
            vrow = plan.read_verdict_row(process, pkeys, slots)
            for i, ids in enumerate(idlists):
                if not vrow[slots[i]]:
                    stats["partitions_skipped"] += 1
                    stats["rows_skipped"] += len(ids)
                    continue
                stats["partitions_visible"] += 1
                for rid in ids:
                    row = rows.get(rid)
                    if row is not None and _matches(row, w, predicate):
                        matches.append(row)
            matches.sort(key=lambda r: r.row_id)
            return matches
        parts = self._partition_candidates(table, where)
        if plan is not None:
            verdicts = plan.read_verdicts(process, parts)
        else:
            verdicts = access.readable_pairs(process, list(parts),
                                             cache=self.kernel.flow_cache,
                                             category="db.read")
        for pkey, ids in parts.items():
            if not verdicts[pkey]:
                stats["partitions_skipped"] += 1
                stats["rows_skipped"] += len(ids)
                continue
            stats["partitions_visible"] += 1
            for rid in ids:
                row = rows.get(rid)
                if row is not None and _matches(row, where, predicate):
                    matches.append(row)
        matches.sort(key=lambda r: r.row_id)
        return matches

    def _pad_scan(self, process: Process, table: Table,
                  where: Optional[dict[str, Any]], scanned: int) -> None:
        if table.pad_scan_to is not None and scanned < table.pad_scan_to \
                and not self._used_index(table, where):
            # constant-cost scans: pay for the rows not present so the
            # query's cost is independent of invisible data (C10b)
            self.kernel.resources.charge(process, "db_rows_scanned",
                                         table.pad_scan_to - scanned)

    @staticmethod
    def _best_index(table: Table, where: Optional[dict[str, Any]]
                    ) -> Optional[tuple[str, Any]]:
        """The indexed where-column with the smallest bucket (fewest
        candidate rows), or None when no where-column is indexed."""
        best: Optional[tuple[int, str, Any]] = None
        if where:
            for col, value in where.items():
                if col in table.indexes:
                    bucket = table.indexes[col].get(value)
                    size = sum(len(ids) for ids in bucket.values()) \
                        if bucket else 0
                    if best is None or size < best[0]:
                        best = (size, col, value)
        if best is None:
            return None
        return best[1], best[2]

    def _candidate_rows(self, process: Process, table: Table,
                        where: Optional[dict[str, Any]]) -> list[Row]:
        """Narrow by the smallest available index bucket, else scan."""
        choice = self._best_index(table, where)
        if choice is not None:
            col, value = choice
            bucket = table.indexes[col].get(value)
            ids: set[int] = set()
            if bucket:
                for part_ids in bucket.values():
                    ids |= part_ids
            return [table.rows[i] for i in sorted(ids)
                    if i in table.rows]
        return [table.rows[i] for i in sorted(table.rows)]

    def _partition_candidates(self, table: Table,
                              where: Optional[dict[str, Any]]
                              ) -> dict[tuple[Label, Label], list[int]]:
        """Candidate row ids per partition (sorted), narrowed by the
        smallest index bucket when one applies.  Memoized on the table
        until any row is added or removed — callers never mutate the
        returned mapping."""
        choice = self._best_index(table, where)
        cached = table._cand_cache.get(choice)
        if cached is not None:
            return cached
        if choice is not None:
            col, value = choice
            bucket = table.indexes[col].get(value) or {}
            parts = {pkey: sorted(ids)
                     for pkey, ids in bucket.items() if ids}
        else:
            parts = {pkey: sorted(rows)
                     for pkey, rows in table.partitions.items() if rows}
        table._cand_cache[choice] = parts
        return parts

    def _partition_arrays(self, table: Table,
                          where: Optional[dict[str, Any]]
                          ) -> tuple[list, list, list]:
        """Slot-aligned view of :meth:`_partition_candidates` for the
        array-backed verdict path (M14): ``(pkeys, slots, idlists,
        prechecked)`` with the three lists aligned index-for-index and
        ``slots`` drawn from the store-wide registry.  ``prechecked``
        is True when the where clause is a single column answered by
        that column's index — every candidate id then satisfies it by
        construction, and the scan loop can skip re-verifying it row
        by row.  Memoized alongside the candidate mapping (same
        invalidation: any membership change clears the table's cache).

        The memo is keyed by the *where signature* (the sorted
        column/value pairs), not the index choice: :meth:`_best_index`
        re-walks bucket sizes to pick the smallest, and on a warm
        table that walk is the single most expensive step of a hot
        planned scan.  The signature determines the choice until any
        membership change — which clears this memo too.
        """
        cache = table._cand_cache
        wkey: Optional[tuple]
        if where:
            try:
                wkey = (_ARRAYS, tuple(sorted(where.items())))
            except TypeError:  # unhashable where value: no memo
                wkey = None
        else:
            wkey = (_ARRAYS, None)
        if wkey is not None:
            cached = cache.get(wkey)
            if cached is not None:
                return cached
        parts = self._partition_candidates(table, where)
        slot_of = self._slots
        pkeys = list(parts)
        slots = []
        for pkey in pkeys:
            slot = slot_of.get(pkey)
            if slot is None:
                slot = slot_of[pkey] = len(slot_of)
            slots.append(slot)
        prechecked = (bool(where) and len(where) == 1
                      and next(iter(where)) in table.indexes)
        arrays = (pkeys, slots, list(parts.values()), prechecked)
        if wkey is not None:
            cache[wkey] = arrays
        return arrays

    @staticmethod
    def _used_index(table: Table, where: Optional[dict[str, Any]]) -> bool:
        return bool(where) and any(col in table.indexes for col in where)


def _matches(row: Row, where: Optional[dict[str, Any]],
             predicate: Optional[Predicate]) -> bool:
    if where:
        for col, value in where.items():
            if row.values.get(col) != value:
                return False
    if predicate is not None and not predicate(row.values):
        return False
    return True


class DbView:
    """A store handle bound to one process (mirrors :class:`FsView`).

    ``plan`` optionally binds a compiled
    :class:`~repro.platform.plans.RequestPlan` (M12) so label-filtered
    reads answer partition visibility from the plan's value-keyed
    verdict table instead of the pid-keyed flow cache.
    """

    def __init__(self, store: LabeledStore, process: Process,
                 plan: Optional[Any] = None) -> None:
        self._store = store
        self._process = process
        self._plan = plan

    def create_table(self, name: str, indexes: Iterable[str] = ()) -> Table:
        return self._store.create_table(self._process, name, indexes=indexes)

    def has_table(self, name: str) -> bool:
        """Catalog probe.  The catalog is public (see
        :meth:`LabeledStore.create_table`), so this neither charges nor
        audits — it lets an app's ensure-table preamble skip the
        create/``TableExists`` exception round-trip on every request."""
        return name in self._store._tables

    def insert(self, table: str, values: dict[str, Any], **kw: Any) -> int:
        return self._store.insert(self._process, table, values, **kw)

    def select(self, table: str, **kw: Any) -> list[dict[str, Any]]:
        return self._store.select(self._process, table, plan=self._plan,
                                  **kw)

    def update(self, table: str, **kw: Any) -> int:
        return self._store.update(self._process, table, plan=self._plan,
                                  **kw)

    def delete(self, table: str, **kw: Any) -> int:
        return self._store.delete(self._process, table, plan=self._plan,
                                  **kw)

    def count(self, table: str, **kw: Any) -> int:
        return self._store.count(self._process, table, plan=self._plan,
                                 **kw)

    def get(self, table: str, row_id: int) -> dict[str, Any]:
        return self._store.get(self._process, table, row_id)
