"""The labeled tuple store — W5's replacement for shared SQL.

The paper flags SQL as a problem twice: malicious queries can lock the
database for everyone (§3.5 "Performance"), and "the SQL interface to
databases can leak information implicitly and thus needs to be replaced
under W5" (§3.5 "Covert Channels").  This module is that replacement:

* every row carries its own secrecy/integrity labels, checked with the
  same guards as files (:mod:`repro.core.access`);
* queries are **label-filtered**: rows the caller may not read are
  silently omitted, so result *presence, absence, count and error
  behaviour* are all independent of invisible data — the read-back
  covert channel is closed by construction (demonstrated head-to-head
  in experiment C10 against a fail-stop variant that leaks one bit per
  query);
* every operation charges the caller's query budget through the kernel
  resource hook, which is how a provider keeps one developer's hostile
  query from starving the cluster (experiment C9).

The query language is deliberately tiny — equality matches plus an
optional predicate — because a full SQL engine adds nothing to the
security argument.  Equality lookups use hash indexes declared at
table-creation time.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..core import access
from ..kernel import Kernel, Process
from ..kernel import audit as A
from ..labels import IntegrityViolation, Label, SecrecyViolation
from .errors import NoSuchRow, NoSuchTable, SchemaError, TableExists

Predicate = Callable[[dict[str, Any]], bool]


@dataclass
class Row:
    """One labeled tuple."""

    row_id: int
    values: dict[str, Any]
    slabel: Label
    ilabel: Label
    version: int = 1
    #: Cached "all values are immutable scalars" verdict; None = not
    #: yet computed, recomputed lazily after every update.
    _flat: Optional[bool] = field(default=None, repr=False, compare=False)

    #: Strictly immutable leaf types only — a tuple/frozenset may nest
    #: a mutable object, so containers always take the deepcopy path.
    _FLAT_TYPES = (type(None), bool, int, float, complex, str, bytes)

    def snapshot(self) -> dict[str, Any]:
        """A defensive copy handed to callers: rows are store-owned,
        and a shared nested list would let a reader mutate storage past
        the write checks.  Rows of immutable scalars — the common case
        — take a shallow ``dict`` copy (the values cannot be mutated
        through it); anything nested still gets the full deepcopy."""
        if self._flat is None:
            self._flat = all(
                type(v) in self._FLAT_TYPES for v in self.values.values())
        if self._flat:
            return dict(self.values)
        return copy.deepcopy(self.values)


@dataclass
class Table:
    """A named collection of rows plus its hash indexes.

    ``pad_scan_to`` closes the residual timing channel of full scans
    (experiment C10b): when set, every unindexed query is charged as
    if it touched at least that many rows, so query cost no longer
    reveals how much *invisible* data the table holds.  The provider
    pays the padding in wasted work — the classic covert-channel
    bandwidth/performance trade.
    """

    name: str
    indexed_columns: tuple[str, ...] = ()
    pad_scan_to: Optional[int] = None
    rows: dict[int, Row] = field(default_factory=dict)
    # column -> value -> set of row ids
    indexes: dict[str, dict[Any, set[int]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for col in self.indexed_columns:
            self.indexes.setdefault(col, {})

    # -- index maintenance (store-internal) ----------------------------

    def index_add(self, row: Row) -> None:
        for col, idx in self.indexes.items():
            if col in row.values:
                idx.setdefault(row.values[col], set()).add(row.row_id)

    def index_remove(self, row: Row) -> None:
        for col, idx in self.indexes.items():
            if col in row.values:
                bucket = idx.get(row.values[col])
                if bucket:
                    bucket.discard(row.row_id)
                    if not bucket:
                        del idx[row.values[col]]


class LabeledStore:
    """A multi-table store enforcing per-row labels on every operation."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._tables: dict[str, Table] = {}
        self._row_ids = itertools.count(1)

    def snapshot(self) -> dict[str, Any]:
        """:class:`~repro.core.snapshot.Snapshotable` — serialize every
        table with per-row labels (restore with
        :func:`repro.db.restore_store`)."""
        from .persist import snapshot_store
        return snapshot_store(self)

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def create_table(self, process: Process, name: str,
                     indexes: Iterable[str] = (),
                     pad_scan_to: Optional[int] = None) -> Table:
        """Create a table.  The catalog itself is public (table names
        must not depend on secrets, or their existence would leak)."""
        self.kernel.resources.charge(process, "db_queries", 1)
        if name in self._tables:
            raise TableExists(name)
        table = Table(name=name, indexed_columns=tuple(indexes),
                      pad_scan_to=pad_scan_to)
        self._tables[name] = table
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"create table {name}")
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTable(name) from None

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, process: Process, name: str) -> None:
        """Drop a table; requires write access to every remaining row."""
        table = self.table(name)
        for row in table.rows.values():
            access.check_write(process, row.slabel, row.ilabel,
                               f"{name}#{row.row_id}",
                               cache=self.kernel.flow_cache,
                               category="db.write")
        del self._tables[name]
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"drop table {name}")

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert(self, process: Process, table_name: str,
               values: dict[str, Any], slabel: Optional[Label] = None,
               ilabel: Optional[Label] = None) -> int:
        """Insert a row; labels default to the writer's labels.

        Like file creation, the chosen labels are checked as a write:
        a tainted process cannot insert into a less-tainted row.
        """
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        if not isinstance(values, dict):
            raise SchemaError("row values must be a dict")
        row = Row(row_id=next(self._row_ids),
                  values=copy.deepcopy(values),
                  slabel=process.slabel if slabel is None else slabel,
                  ilabel=process.ilabel if ilabel is None else ilabel)
        try:
            access.check_write(process, row.slabel, row.ilabel,
                               f"{table_name}#new",
                               cache=self.kernel.flow_cache,
                               category="db.write")
        except (SecrecyViolation, IntegrityViolation):
            self.kernel.audit.record(A.DB_QUERY, False, process.name,
                                     f"insert {table_name} refused")
            raise
        self.kernel.resources.charge(process, "db_rows", 1)
        table.rows[row.row_id] = row
        table.index_add(row)
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"insert {table_name}#{row.row_id}")
        return row.row_id

    def update(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]] = None,
               predicate: Optional[Predicate] = None,
               changes: Optional[dict[str, Any]] = None) -> int:
        """Update every *visible and writable* matching row.

        Rows the caller cannot read are silently skipped (they are not
        part of the caller's world); rows it can read but not write
        raise — failing to update data you can see is an honest error,
        not a covert channel.  Returns the number of rows updated.
        """
        if changes is None:
            raise SchemaError("update requires changes")
        table = self.table(table_name)
        updated = 0
        for row in self._candidate_rows(process, table, where):
            if not access.readable(process, row.slabel, row.ilabel,
                                   cache=self.kernel.flow_cache,
                                   category="db.read"):
                continue
            if not _matches(row, where, predicate):
                continue
            try:
                access.check_write(process, row.slabel, row.ilabel,
                                   f"{table_name}#{row.row_id}",
                                   cache=self.kernel.flow_cache,
                                   category="db.write")
            except (SecrecyViolation, IntegrityViolation):
                self.kernel.audit.record(
                    A.DB_QUERY, False, process.name,
                    f"update {table_name}#{row.row_id} refused")
                raise
            table.index_remove(row)
            row.values.update(copy.deepcopy(changes))
            row._flat = None  # re-derive the fast-copy verdict lazily
            row.version += 1
            table.index_add(row)
            updated += 1
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"update {table_name} ({updated} rows)")
        return updated

    def delete(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]] = None,
               predicate: Optional[Predicate] = None) -> int:
        """Delete every visible and writable matching row (count returned)."""
        table = self.table(table_name)
        doomed = []
        for row in self._candidate_rows(process, table, where):
            if not access.readable(process, row.slabel, row.ilabel,
                                   cache=self.kernel.flow_cache,
                                   category="db.read"):
                continue
            if not _matches(row, where, predicate):
                continue
            try:
                access.check_write(process, row.slabel, row.ilabel,
                                   f"{table_name}#{row.row_id}",
                                   cache=self.kernel.flow_cache,
                                   category="db.write")
            except (SecrecyViolation, IntegrityViolation):
                self.kernel.audit.record(
                    A.DB_QUERY, False, process.name,
                    f"delete {table_name}#{row.row_id} refused")
                raise
            doomed.append(row)
        for row in doomed:
            table.index_remove(row)
            del table.rows[row.row_id]
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"delete {table_name} ({len(doomed)} rows)")
        return len(doomed)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def select(self, process: Process, table_name: str,
               where: Optional[dict[str, Any]] = None,
               predicate: Optional[Predicate] = None,
               limit: Optional[int] = None) -> list[dict[str, Any]]:
        """Label-filtered query: returns copies of visible matching rows.

        The result is *identical* to what it would be if invisible rows
        did not exist — the covert-channel-free semantics.
        """
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        out: list[dict[str, Any]] = []
        candidates = self._candidate_rows(process, table, where)
        scanned = 0
        for row in candidates:
            scanned += 1
            self.kernel.resources.charge(process, "db_rows_scanned", 1)
            if not access.readable(process, row.slabel, row.ilabel,
                                   cache=self.kernel.flow_cache,
                                   category="db.read"):
                continue
            if not _matches(row, where, predicate):
                continue
            out.append(row.snapshot())
            if limit is not None and len(out) >= limit:
                break
        if table.pad_scan_to is not None and scanned < table.pad_scan_to \
                and not self._used_index(table, where):
            # constant-cost scans: pay for the rows not present so the
            # query's cost is independent of invisible data (C10b)
            self.kernel.resources.charge(process, "db_rows_scanned",
                                         table.pad_scan_to - scanned)
        self.kernel.audit.record(A.DB_QUERY, True, process.name,
                                 f"select {table_name} ({len(out)} rows)")
        return out

    def select_failstop(self, process: Process, table_name: str,
                        where: Optional[dict[str, Any]] = None,
                        predicate: Optional[Predicate] = None) -> list[dict[str, Any]]:
        """The *rejected* design (DESIGN.md §6): raise if any matching
        row is unreadable.  Exists so experiment C10 can measure the
        covert channel this semantics opens (1 bit per query).  Not
        part of the supported API surface for applications.
        """
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        out: list[dict[str, Any]] = []
        for row in self._candidate_rows(process, table, where):
            if not _matches(row, where, predicate):
                continue
            access.check_read(process, row.slabel, row.ilabel,
                              f"{table_name}#{row.row_id}",
                              cache=self.kernel.flow_cache,
                              category="db.read")
            out.append(row.snapshot())
        return out

    def count(self, process: Process, table_name: str,
              where: Optional[dict[str, Any]] = None,
              predicate: Optional[Predicate] = None) -> int:
        """Label-filtered count (same visibility rule as select)."""
        return len(self.select(process, table_name, where=where,
                               predicate=predicate))

    def get(self, process: Process, table_name: str, row_id: int) -> dict[str, Any]:
        """Fetch one visible row by id; invisible ids read as missing."""
        table = self.table(table_name)
        self.kernel.resources.charge(process, "db_queries", 1)
        row = table.rows.get(row_id)
        if row is None or not access.readable(
                process, row.slabel, row.ilabel,
                cache=self.kernel.flow_cache, category="db.read"):
            raise NoSuchRow(f"{table_name}#{row_id}")
        return row.snapshot()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _candidate_rows(self, process: Process, table: Table,
                        where: Optional[dict[str, Any]]) -> list[Row]:
        """Narrow by the best available index, else scan."""
        if where:
            for col, value in where.items():
                if col in table.indexes:
                    ids = table.indexes[col].get(value, set())
                    return [table.rows[i] for i in sorted(ids)
                            if i in table.rows]
        return [table.rows[i] for i in sorted(table.rows)]

    @staticmethod
    def _used_index(table: Table, where: Optional[dict[str, Any]]) -> bool:
        return bool(where) and any(col in table.indexes for col in where)


def _matches(row: Row, where: Optional[dict[str, Any]],
             predicate: Optional[Predicate]) -> bool:
    if where:
        for col, value in where.items():
            if row.values.get(col) != value:
                return False
    if predicate is not None and not predicate(row.values):
        return False
    return True


class DbView:
    """A store handle bound to one process (mirrors :class:`FsView`)."""

    def __init__(self, store: LabeledStore, process: Process) -> None:
        self._store = store
        self._process = process

    def create_table(self, name: str, indexes: Iterable[str] = ()) -> Table:
        return self._store.create_table(self._process, name, indexes=indexes)

    def insert(self, table: str, values: dict[str, Any], **kw: Any) -> int:
        return self._store.insert(self._process, table, values, **kw)

    def select(self, table: str, **kw: Any) -> list[dict[str, Any]]:
        return self._store.select(self._process, table, **kw)

    def update(self, table: str, **kw: Any) -> int:
        return self._store.update(self._process, table, **kw)

    def delete(self, table: str, **kw: Any) -> int:
        return self._store.delete(self._process, table, **kw)

    def count(self, table: str, **kw: Any) -> int:
        return self._store.count(self._process, table, **kw)

    def get(self, table: str, row_id: int) -> dict[str, Any]:
        return self._store.get(self._process, table, row_id)
