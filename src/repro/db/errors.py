"""Database errors, rooted in the unified :mod:`repro.errors` tree.

:class:`NoSuchRow` deliberately reads the same for "absent" and
"invisible to the caller" — and as a :class:`repro.errors.NotFound` it
stays indistinguishable from a missing file or user, keeping the
covert-channel posture of the label-filtered store.
"""

from __future__ import annotations

from ..errors import NotFound, W5Error


class DbError(W5Error):
    """Base class for database failures unrelated to labels."""


class NoSuchTable(DbError, NotFound):
    """The named table does not exist."""


class TableExists(DbError):
    """Attempt to create a table that already exists."""


class NoSuchRow(DbError, NotFound):
    """A row id did not resolve (or is invisible to the caller)."""


class SchemaError(DbError):
    """A value violated the table's declared constraints."""
