"""Database errors."""

from __future__ import annotations


class DbError(Exception):
    """Base class for database failures unrelated to labels."""


class NoSuchTable(DbError):
    """The named table does not exist."""


class TableExists(DbError):
    """Attempt to create a table that already exists."""


class NoSuchRow(DbError):
    """A row id did not resolve (or is invisible to the caller)."""


class SchemaError(DbError):
    """A value violated the table's declared constraints."""
