"""Labeled tuple store: W5's covert-channel-free database substrate."""

from .errors import DbError, NoSuchRow, NoSuchTable, SchemaError, TableExists
from .persist import restore_store, snapshot_store
from .store import DbView, LabeledStore, Row, Table

__all__ = [
    "DbError", "NoSuchRow", "NoSuchTable", "SchemaError", "TableExists",
    "restore_store", "snapshot_store",
    "DbView", "LabeledStore", "Row", "Table",
]
