"""Labeled tuple store: W5's covert-channel-free database substrate."""

from .errors import DbError, NoSuchRow, NoSuchTable, SchemaError, TableExists
from .persist import (merge_store_delta, restore_store,
                      snapshot_store, snapshot_store_delta)
from .store import DbView, LabeledStore, Row, Table

__all__ = [
    "DbError", "NoSuchRow", "NoSuchTable", "SchemaError", "TableExists",
    "merge_store_delta", "restore_store", "snapshot_store",
    "snapshot_store_delta",
    "DbView", "LabeledStore", "Row", "Table",
]
