"""Store persistence: snapshot and restore with per-row labels intact.

The database sibling of :mod:`repro.fs.persist`; same trust level
(provider cold storage), same namespace discipline.
"""

from __future__ import annotations

from typing import Any

from ..kernel import Kernel
from ..labels import label_from_dict, label_to_dict
from .store import LabeledStore, Row, Table


def snapshot_store(store: LabeledStore) -> dict[str, Any]:
    """Serialize every table, row, and label."""
    namespace = store.kernel.tags.namespace
    tables = []
    max_row_id = 0
    for name in store.tables():
        table = store.table(name)
        rows = []
        for row in sorted(table.rows.values(), key=lambda r: r.row_id):
            max_row_id = max(max_row_id, row.row_id)
            rows.append({
                "row_id": row.row_id,
                "values": dict(row.values),
                "slabel": label_to_dict(row.slabel, namespace),
                "ilabel": label_to_dict(row.ilabel, namespace),
                "version": row.version,
            })
        tables.append({"name": table.name,
                       "indexes": list(table.indexed_columns),
                       "pad_scan_to": table.pad_scan_to,
                       "rows": rows})
    return {"namespace": namespace, "tables": tables,
            "next_row_id": max_row_id + 1}


def restore_store(kernel: Kernel, snapshot: dict[str, Any],
                  partitioned: bool = True) -> LabeledStore:
    """Rebuild a store inside ``kernel`` (restore the tag registry
    first; see :mod:`repro.fs.persist`).  ``index_add`` rebuilds the
    label partitions alongside the hash indexes, so a restored store
    is partition-consistent regardless of the engine that wrote it."""
    import itertools
    store = LabeledStore(kernel, partitioned=partitioned)
    store._row_ids = itertools.count(snapshot.get("next_row_id", 1))
    for td in snapshot["tables"]:
        table = Table(name=td["name"],
                      indexed_columns=tuple(td.get("indexes", ())),
                      pad_scan_to=td.get("pad_scan_to"))
        for rd in td["rows"]:
            row = Row(row_id=rd["row_id"], values=dict(rd["values"]),
                      slabel=label_from_dict(rd["slabel"], kernel.tags),
                      ilabel=label_from_dict(rd["ilabel"], kernel.tags),
                      version=rd.get("version", 1))
            table.rows[row.row_id] = row
            table.index_add(row)
        store._tables[table.name] = table
    return store
