"""Store persistence: snapshot and restore with per-row labels intact.

The database sibling of :mod:`repro.fs.persist`; same trust level
(provider cold storage), same namespace discipline.
"""

from __future__ import annotations

from typing import Any

from ..kernel import Kernel
from ..labels import label_from_dict, label_to_dict
from .store import LabeledStore, Row, Table


def _row_dict(row: Row, namespace: str) -> dict[str, Any]:
    return {
        "row_id": row.row_id,
        "values": dict(row.values),
        "slabel": label_to_dict(row.slabel, namespace),
        "ilabel": label_to_dict(row.ilabel, namespace),
        "version": row.version,
    }


def snapshot_store(store: LabeledStore) -> dict[str, Any]:
    """Serialize every table, row, and label."""
    namespace = store.kernel.tags.namespace
    tables = []
    max_row_id = 0
    for name in store.tables():
        table = store.table(name)
        rows = []
        for row in sorted(table.rows.values(), key=lambda r: r.row_id):
            max_row_id = max(max_row_id, row.row_id)
            rows.append(_row_dict(row, namespace))
        tables.append({"name": table.name,
                       "indexes": list(table.indexed_columns),
                       "pad_scan_to": table.pad_scan_to,
                       "rows": rows})
    return {"namespace": namespace, "tables": tables,
            "next_row_id": max_row_id + 1}


# ----------------------------------------------------------------------
# O(dirty) deltas (the incremental-durability path, PR 4)
# ----------------------------------------------------------------------

def snapshot_store_delta(store: LabeledStore) -> dict[str, Any]:
    """Serialize only rows/tables touched since the last checkpoint.

    Cumulative against the base: :func:`merge_store_delta` of
    (base, latest delta) equals a full :func:`snapshot_store`.
    """
    namespace = store.kernel.tags.namespace
    state = store.dirty_state()
    created = []
    for name in sorted(state.get("created_tables", ())):
        table = store._tables.get(name)
        if table is None:  # created, then dropped again
            continue
        created.append({"name": name,
                        "indexes": list(table.indexed_columns),
                        "pad_scan_to": table.pad_scan_to})
    tables: dict[str, dict[str, Any]] = {}
    for name, ids in state.get("dirty_rows", {}).items():
        table = store._tables.get(name)
        if table is None:
            continue
        entry = tables.setdefault(name, {"rows": [], "removed": []})
        entry["rows"] = [_row_dict(table.rows[i], namespace)
                         for i in sorted(ids) if i in table.rows]
    for name, ids in state.get("removed_rows", {}).items():
        if name not in store._tables:
            continue
        entry = tables.setdefault(name, {"rows": [], "removed": []})
        entry["removed"] = sorted(ids)
    return {"namespace": namespace,
            "created_tables": created,
            "dropped_tables": sorted(state.get("dropped_tables", ())),
            "tables": {n: tables[n] for n in sorted(tables)}}


def merge_store_delta(base: dict[str, Any],
                      delta: dict[str, Any]) -> dict[str, Any]:
    """Fold a delta into a base snapshot → a full-equivalent snapshot.

    ``next_row_id`` is recomputed over the merged rows, matching the
    ``max live row id + 1`` a fresh :func:`snapshot_store` reports.
    """
    import copy
    tables = {td["name"]: copy.deepcopy(td) for td in base["tables"]}
    for name in delta.get("dropped_tables", ()):
        tables.pop(name, None)
    for td in delta.get("created_tables", ()):
        tables[td["name"]] = {"name": td["name"],
                              "indexes": list(td["indexes"]),
                              "pad_scan_to": td["pad_scan_to"],
                              "rows": []}
    for name, entry in delta.get("tables", {}).items():
        table = tables.get(name)
        if table is None:
            continue
        rows = {r["row_id"]: r for r in table["rows"]}
        for rid in entry.get("removed", ()):
            rows.pop(rid, None)
        for r in entry.get("rows", ()):
            rows[r["row_id"]] = copy.deepcopy(r)
        table["rows"] = [rows[i] for i in sorted(rows)]
    max_row_id = max((r["row_id"] for td in tables.values()
                      for r in td["rows"]), default=0)
    return {"namespace": base["namespace"],
            "tables": [tables[n] for n in sorted(tables)],
            "next_row_id": max_row_id + 1}


def restore_store(kernel: Kernel, snapshot: dict[str, Any],
                  partitioned: bool = True) -> LabeledStore:
    """Rebuild a store inside ``kernel`` (restore the tag registry
    first; see :mod:`repro.fs.persist`).  ``index_add`` rebuilds the
    label partitions alongside the hash indexes, so a restored store
    is partition-consistent regardless of the engine that wrote it."""
    import itertools
    store = LabeledStore(kernel, partitioned=partitioned)
    store._row_ids = itertools.count(snapshot.get("next_row_id", 1))
    for td in snapshot["tables"]:
        table = Table(name=td["name"],
                      indexed_columns=tuple(td.get("indexes", ())),
                      pad_scan_to=td.get("pad_scan_to"))
        for rd in td["rows"]:
            row = Row(row_id=rd["row_id"], values=dict(rd["values"]),
                      slabel=label_from_dict(rd["slabel"], kernel.tags),
                      ilabel=label_from_dict(rd["ilabel"], kernel.tags),
                      version=rd.get("version", 1))
            table.rows[row.row_id] = row
            table.index_add(row)
        store._tables[table.name] = table
    return store
