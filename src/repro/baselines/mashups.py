"""The §4 mashup baselines: status-quo and MashupOS.

The scenario, verbatim from the paper: "a mashup that combines a page
of a private address book from MyYahoo with map from Google."

* **Status quo** (:class:`ApiMashup`): the mashup page runs in the
  browser; to place markers it calls the map provider's API with each
  entry — "such a mashup would reveal the page of the address book
  (both names and addresses) to Google."

* **MashupOS** (:class:`MashupOsMashup`): client-side isolation lets
  the mashup withhold the *names* — "hiding names from Google.
  However, the application still uses the Google API to place markers
  on the map, and therefore cannot stop the transmission of the
  addresses back to Google's servers."

Both models log exactly what reaches the map provider's servers;
experiment C8 tabulates them against the W5 mashup
(:mod:`repro.apps.mashup`), where marker placement happens server-side
inside the perimeter and the map developer receives nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class MapProviderServer:
    """The map company's servers (Google, in the paper's example)."""

    #: Every (name, address) pair that ever reached these servers.
    received_names: list[str] = field(default_factory=list)
    received_addresses: list[str] = field(default_factory=list)

    def place_marker(self, label: str, address: str) -> str:
        """The public maps API: returns a positioned marker."""
        if label:
            self.received_names.append(label)
        self.received_addresses.append(address)
        return f"<marker label={label or 'pin'} at={hash(address) % 1000}>"

    def saw(self, needle: str) -> bool:
        return (needle in self.received_names
                or needle in self.received_addresses)


@dataclass
class AddressBookService:
    """The mashee (MyYahoo): holds the private address book and exposes
    whatever API it happens to offer (§4: mashups are 'limited to the
    APIs exposed by the data-owning applications')."""

    books: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    #: If False, the API refuses entirely (the 'simple caprice' case).
    api_enabled: bool = True

    def add(self, owner: str, name: str, address: str) -> None:
        self.books.setdefault(owner, []).append((name, address))

    def fetch_api(self, owner: str) -> list[tuple[str, str]]:
        if not self.api_enabled:
            raise PermissionError("address-book API disabled by operator")
        return list(self.books.get(owner, []))


class ApiMashup:
    """The status-quo browser mashup: everything goes to the map API."""

    platform = "status-quo"

    def __init__(self, book: AddressBookService,
                 maps: MapProviderServer) -> None:
        self.book = book
        self.maps = maps

    def render(self, owner: str) -> str:
        entries = self.book.fetch_api(owner)
        markers = [self.maps.place_marker(name, address)
                   for name, address in entries]
        return f"<page>{''.join(markers)}</page>"


class MashupOsMashup:
    """MashupOS-style: names stay client-side, addresses still flow."""

    platform = "mashupos"

    def __init__(self, book: AddressBookService,
                 maps: MapProviderServer) -> None:
        self.book = book
        self.maps = maps

    def render(self, owner: str) -> str:
        entries = self.book.fetch_api(owner)
        markers = []
        for name, address in entries:
            # isolation boundary: the label is withheld from the API
            marker = self.maps.place_marker("", address)
            # the client-side frame composes the name back in locally
            markers.append(f"<labeled name={name}>{marker}</labeled>")
        return f"<page>{''.join(markers)}</page>"
