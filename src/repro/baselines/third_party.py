"""The Facebook-style third-party application platform (§4).

"These third-party applications run on Web servers external to
Facebook, thereby revealing users' profile information to third party
developers, creating a vulnerability (being exposed to the users'
data, the developers could in turn expose it)."

The model: a :class:`ThirdPartyPlatform` owns user profiles; a
:class:`DeveloperServer` is an *external* machine run by the app's
developer.  Using an app ships the user's profile to that server —
there is no perimeter — so the ``received`` log on the developer's
server is ground truth for what leaked.  Experiment C1 tabulates it
against W5, where the same app reads the same data but the developer's
"server" (the app's return channel) gets nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

RenderFn = Callable[[dict[str, str]], Any]


@dataclass
class DeveloperServer:
    """An app developer's machine, outside any perimeter."""

    developer: str
    render: RenderFn
    #: Every profile payload this server ever saw (the leak ledger).
    received: list[dict[str, str]] = field(default_factory=list)

    def handle(self, profile: dict[str, str]) -> Any:
        self.received.append(dict(profile))
        return self.render(profile)

    def saw_value(self, needle: str) -> bool:
        return any(needle in p.values() for p in self.received)


@dataclass
class ThirdPartyPlatform:
    """The data-owning platform that forwards profiles to app servers."""

    name: str = "facebuch"
    profiles: dict[str, dict[str, str]] = field(default_factory=dict)
    apps: dict[str, DeveloperServer] = field(default_factory=dict)
    #: username -> installed app names
    installed: dict[str, set[str]] = field(default_factory=dict)

    def signup(self, username: str, profile: dict[str, str]) -> None:
        self.profiles[username] = dict(profile)
        self.installed[username] = set()

    def register_app(self, app_name: str, server: DeveloperServer) -> None:
        self.apps[app_name] = server

    def install_app(self, username: str, app_name: str) -> None:
        """One click — adoption is as easy as W5's checkbox; the
        difference is what happens on *use*."""
        if app_name not in self.apps:
            raise KeyError(app_name)
        self.installed[username].add(app_name)

    def use_app(self, username: str, app_name: str) -> Any:
        """Run the app: the platform POSTs the user's profile to the
        developer's external server and relays the rendered result."""
        if app_name not in self.installed.get(username, set()):
            raise PermissionError(f"{username} has not installed {app_name}")
        server = self.apps[app_name]
        return server.handle(self.profiles[username])

    def developer_exposure(self, app_name: str) -> int:
        """How many profile payloads the app's developer has seen."""
        return len(self.apps[app_name].received)
