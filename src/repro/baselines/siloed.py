"""Figure 1: today's Web — data bound to applications.

Each :class:`SiloSite` is one of the paper's boxes ("Photo Sharing
Site", "Blogging Site"): its own accounts, its own copy of the user's
data, its own application logic, no cross-site reads.  The model is
deliberately minimal; what the experiments measure is the *shape* of
the architecture:

* joining N sites means entering your profile N times (E1's re-entry
  count — "type in the same romantic, music, and food preferences to
  half a dozen social networking sites", §1);
* a new application starts with zero users and zero data (C7's
  barrier to entry);
* "migrating" means downloading from one silo and re-uploading to
  another, item by item (E1's migration cost);
* the site's operator sees everything its users store (C1's trust
  ledger: every silo is a fully trusted party).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class SiloError(Exception):
    """Account or data errors inside one silo."""


@dataclass
class SiloSite:
    """One of today's Web applications: logic + captive data."""

    name: str
    operator: str = ""
    #: username -> profile fields re-entered at this site
    profiles: dict[str, dict[str, str]] = field(default_factory=dict)
    #: username -> item name -> payload
    data: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Count of fields users had to type in here (E1 metric).
    reentry_count: int = 0
    #: Everything the operator could read (C1 trust ledger).
    operator_visible: list[Any] = field(default_factory=list)

    def signup(self, username: str, profile: dict[str, str]) -> None:
        """Join the site: re-enter your profile from scratch."""
        if username in self.profiles:
            raise SiloError(f"{username} already on {self.name}")
        self.profiles[username] = dict(profile)
        self.data[username] = {}
        self.reentry_count += len(profile)
        self.operator_visible.extend(profile.values())

    def has_user(self, username: str) -> bool:
        return username in self.profiles

    def store(self, username: str, item: str, payload: Any) -> None:
        if username not in self.profiles:
            raise SiloError(f"{username} not signed up on {self.name}")
        self.data[username][item] = payload
        self.operator_visible.append(payload)

    def fetch(self, username: str, item: str) -> Any:
        try:
            return self.data[username][item]
        except KeyError:
            raise SiloError(f"{item} not found on {self.name}") from None

    def items_of(self, username: str) -> list[str]:
        return sorted(self.data.get(username, {}))

    def user_count(self) -> int:
        return len(self.profiles)


@dataclass
class SiloedWeb:
    """The whole Figure-1 world: many silos, no sharing."""

    sites: dict[str, SiloSite] = field(default_factory=dict)

    def add_site(self, name: str, operator: str = "") -> SiloSite:
        if name in self.sites:
            raise SiloError(f"site {name} exists")
        site = SiloSite(name=name, operator=operator or f"{name}-corp")
        self.sites[name] = site
        return site

    def site(self, name: str) -> SiloSite:
        try:
            return self.sites[name]
        except KeyError:
            raise SiloError(f"no site {name}") from None

    # -- the costs the architecture imposes -----------------------------

    def join_everywhere(self, username: str,
                        profile: dict[str, str]) -> int:
        """Sign up on every site; returns total re-entered fields."""
        fields = 0
        for site in self.sites.values():
            site.signup(username, profile)
            fields += len(profile)
        return fields

    def migrate(self, username: str, src: str, dst: str) -> int:
        """Move a user's items from one silo to another by download +
        re-upload; returns items moved (each a manual step)."""
        source, target = self.site(src), self.site(dst)
        moved = 0
        for item in source.items_of(username):
            target.store(username, item, source.fetch(username, item))
            moved += 1
        return moved

    def duplicated_fields(self, username: str) -> int:
        """How many profile copies exist for this user across sites."""
        return sum(1 for site in self.sites.values()
                   if site.has_user(username))

    def cross_site_read(self, from_site: str, username: str,
                        target_site: str, item: str) -> Any:
        """What Figure 1 makes impossible: one site reading another's
        data.  Always raises — there is no such channel."""
        raise SiloError(
            f"{from_site} has no access to {target_site}'s database")
