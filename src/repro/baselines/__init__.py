"""Status-quo baselines the paper argues against (Figure 1, §4)."""

from .mashups import (AddressBookService, ApiMashup, MapProviderServer,
                      MashupOsMashup)
from .siloed import SiloError, SiloSite, SiloedWeb
from .third_party import DeveloperServer, ThirdPartyPlatform

__all__ = [
    "AddressBookService", "ApiMashup", "MapProviderServer",
    "MashupOsMashup",
    "SiloError", "SiloSite", "SiloedWeb",
    "DeveloperServer", "ThirdPartyPlatform",
]
