"""CodeRank: dependency-graph module ranking (§3.2).

"Where PageRank uses the structure of the Web's hyperlink graph to
infer a page's suitability, a W5 'code search' could use the structure
of the dependency graph among modules to infer a module's suitability."

Edges come in the paper's two flavors — *imports* (A imports B as a
library) and *embeds* (A's HTML output points at an application using
B) — optionally weighted differently.  The ranking is PageRank over
the reversed edges (a dependency *confers* authority on what it
imports), computed with the standard power iteration.

The crucial property (exercised in experiment C5): raw popularity
counts are sybil-vulnerable — a clique of spam modules with fabricated
usage looks hot — while CodeRank discounts endorsements from places
nothing reputable points at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

import networkx as nx

IMPORT = "import"
EMBED = "embed"


@dataclass
class DependencyGraph:
    """Typed dependency edges among registry modules."""

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_module(self, name: str) -> None:
        self.graph.add_node(name)

    def add_edge(self, importer: str, imported: str,
                 kind: str = IMPORT) -> None:
        """Add a dependency edge.

        A pair may be related both ways (imported *and* embedded); the
        graph keeps one edge with the stronger kind (IMPORT > EMBED).
        """
        if kind not in (IMPORT, EMBED):
            raise ValueError(f"unknown dependency kind {kind!r}")
        if self.graph.has_edge(importer, imported):
            if self.graph[importer][imported]["kind"] == IMPORT:
                return
        self.graph.add_edge(importer, imported, kind=kind)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str]],
                   kind: str = IMPORT) -> "DependencyGraph":
        dg = cls()
        for a, b in edges:
            dg.add_edge(a, b, kind=kind)
        return dg

    @classmethod
    def from_registry(cls, registry, usage_edges: Iterable[tuple[str, str]]
                      = ()) -> "DependencyGraph":
        """Build from a platform registry: declared imports plus the
        dynamic usage edges the provider recorded."""
        dg = cls()
        for module in registry:
            dg.add_module(module.name)
        for a, b in registry.dependency_edges():
            dg.add_edge(a, b, kind=IMPORT)
        for a, b in usage_edges:
            dg.add_edge(a, b, kind=EMBED)
        return dg

    def modules(self) -> list[str]:
        return sorted(self.graph.nodes)


def coderank(deps: DependencyGraph, damping: float = 0.85,
             import_weight: float = 1.0, embed_weight: float = 0.5,
             personalization: Optional[Mapping[str, float]] = None,
             max_iter: int = 100, tol: float = 1e-10) -> dict[str, float]:
    """PageRank over the weighted dependency graph.

    Returns a score per module summing to 1.  ``import_weight`` /
    ``embed_weight`` set the endorsement strength of the two edge
    kinds and must lie in (0, 1]: an edge of weight *w* transfers a
    *w* fraction of what a full endorsement would, with the remainder
    recycled to the teleport pool — so the discount holds globally,
    not merely relative to a node's other out-edges.  (Ablated in
    experiment C5b.)

    ``personalization`` biases the teleport vector, the classic
    link-farm defense: pass platform-observed *user adoption counts*
    (which sybils cannot fabricate without real users) and a clique of
    spam modules endorsing each other receives essentially no rank to
    amplify.  ``None`` means uniform teleport — plain PageRank, which
    experiment C5 shows is itself spammable.
    """
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    for w in (import_weight, embed_weight):
        if not 0 < w <= 1:
            raise ValueError("edge weights must be in (0, 1]")
    g = deps.graph
    if g.number_of_nodes() == 0:
        return {}
    return _pagerank(g, damping, import_weight, embed_weight,
                     personalization, max_iter, tol)


def _pagerank(g: nx.DiGraph, damping: float, import_weight: float,
              embed_weight: float,
              personalization: Optional[Mapping[str, float]],
              max_iter: int, tol: float) -> dict[str, float]:
    """Weighted power iteration; endorsement flows importer→imported.

    Each out-edge of a node gets an equal 1/out_degree share of the
    node's endorsement budget, scaled by its kind weight; the unscaled
    remainder joins the teleport pool, preserving a total mass of 1.
    """
    nodes = list(g.nodes)
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}
    out_count = [0] * n
    edges: list[tuple[int, int, float]] = []
    for a, b, data in g.edges(data=True):
        w = import_weight if data.get("kind", IMPORT) == IMPORT \
            else embed_weight
        edges.append((index[a], index[b], w))
        out_count[index[a]] += 1
    # fraction of each node's budget that actually travels its edges
    passed = [0.0] * n
    for a, __, w in edges:
        passed[a] += w / out_count[a]
    # teleport vector: uniform, or normalized personalization weights
    if personalization is None:
        teleport = [1.0 / n] * n
    else:
        teleport = [max(0.0, float(personalization.get(node, 0.0)))
                    for node in nodes]
        total = sum(teleport)
        if total <= 0.0:
            teleport = [1.0 / n] * n
        else:
            teleport = [t / total for t in teleport]
    rank = list(teleport)
    for __ in range(max_iter):
        # residual = dangling nodes + per-edge weight discounts
        residual = sum(rank[i] * (1.0 - passed[i]) for i in range(n))
        nxt = [(1.0 - damping + damping * residual) * t for t in teleport]
        for a, b, w in edges:
            nxt[b] += damping * rank[a] * (w / out_count[a])
        delta = sum(abs(x - y) for x, y in zip(nxt, rank))
        rank = nxt
        if delta < tol:
            break
    return {node: rank[index[node]] for node in nodes}


def popularity_rank(usage_counts: Mapping[str, int]) -> dict[str, float]:
    """The naive baseline: normalize raw usage counts."""
    total = float(sum(usage_counts.values())) or 1.0
    return {m: c / total for m, c in usage_counts.items()}


def top_k(scores: Mapping[str, float], k: int,
          restrict_to: Optional[Iterable[str]] = None) -> list[str]:
    """The k best-scored modules (optionally within a candidate set),
    ties broken by name for determinism."""
    pool = set(restrict_to) if restrict_to is not None else set(scores)
    ranked = sorted((m for m in scores if m in pool),
                    key=lambda m: (-scores[m], m))
    return ranked[:k]


def precision_at_k(scores: Mapping[str, float], relevant: set[str],
                   k: int, restrict_to: Optional[Iterable[str]] = None
                   ) -> float:
    """Fraction of the top-k that are in the relevant set."""
    if k <= 0:
        return 0.0
    hits = sum(1 for m in top_k(scores, k, restrict_to) if m in relevant)
    return hits / k
