"""Editors, reputation, and the combined trust score (§3.2).

"One can also imagine the emergence of W5 *editors*, who collect,
audit and vet software collections [...] These editors can establish
reputations based on various popularity metrics mined from users'
preferences."

An :class:`Editor` endorses modules; an editor's reputation is the
(normalized) adoption its past endorsements achieved.  The
:class:`TrustScorer` combines the three signals the paper enumerates —
structure (CodeRank), popularity, and editorial endorsement — into a
single score, which is what a provider's "code search" would sort by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .coderank import DependencyGraph, coderank, popularity_rank


@dataclass
class Editor:
    """One vetting entity (a trade journal, a distro maintainer...)."""

    name: str
    endorsed: set[str] = field(default_factory=set)

    def endorse(self, module: str) -> None:
        self.endorsed.add(module)

    def retract(self, module: str) -> None:
        self.endorsed.discard(module)


class EditorBoard:
    """All editors plus reputation derived from user adoption."""

    def __init__(self) -> None:
        self._editors: dict[str, Editor] = {}

    def editor(self, name: str) -> Editor:
        if name not in self._editors:
            self._editors[name] = Editor(name)
        return self._editors[name]

    def editors(self) -> list[Editor]:
        return [self._editors[k] for k in sorted(self._editors)]

    def reputation(self, adoption_counts: Mapping[str, int]
                   ) -> dict[str, float]:
        """Editor name -> mean adoption of their endorsements,
        normalized to [0, 1] across editors."""
        raw: dict[str, float] = {}
        for ed in self._editors.values():
            if not ed.endorsed:
                raw[ed.name] = 0.0
                continue
            raw[ed.name] = (sum(adoption_counts.get(m, 0)
                                for m in ed.endorsed) / len(ed.endorsed))
        top = max(raw.values(), default=0.0)
        if top == 0.0:
            return {name: 0.0 for name in raw}
        return {name: value / top for name, value in raw.items()}

    def endorsement_score(self, adoption_counts: Mapping[str, int]
                          ) -> dict[str, float]:
        """Module -> summed reputation of the editors endorsing it."""
        reputation = self.reputation(adoption_counts)
        scores: dict[str, float] = {}
        for ed in self._editors.values():
            for module in ed.endorsed:
                scores[module] = scores.get(module, 0.0) + reputation[ed.name]
        return scores


@dataclass
class TrustScorer:
    """Weighted blend of the §3.2 trust signals.

    Weights default to structure-heavy because experiment C5 shows the
    structural signal is the sybil-resistant one; the blend is an
    ablation axis.
    """

    w_structure: float = 0.6
    w_popularity: float = 0.2
    w_editorial: float = 0.2

    def score(self, deps: DependencyGraph,
              usage_counts: Mapping[str, int],
              board: Optional[EditorBoard] = None,
              adoption_counts: Optional[Mapping[str, int]] = None
              ) -> dict[str, float]:
        structure = coderank(deps)
        popularity = popularity_rank(dict(usage_counts))
        editorial = (board.endorsement_score(adoption_counts or {})
                     if board is not None else {})
        modules = set(structure) | set(popularity) | set(editorial)
        out = {}
        for m in modules:
            out[m] = (self.w_structure * _norm(structure).get(m, 0.0)
                      + self.w_popularity * _norm(popularity).get(m, 0.0)
                      + self.w_editorial * _norm(editorial).get(m, 0.0))
        return out


def _norm(scores: Mapping[str, float]) -> dict[str, float]:
    top = max(scores.values(), default=0.0)
    if top <= 0.0:
        return dict(scores)
    return {k: v / top for k, v in scores.items()}
