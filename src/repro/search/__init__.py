"""Code search: dependency-graph ranking, editors, trust (§3.2)."""

from .coderank import (DependencyGraph, EMBED, IMPORT, coderank,
                       popularity_rank, precision_at_k, top_k)
from .editors import Editor, EditorBoard, TrustScorer

__all__ = [
    "DependencyGraph", "EMBED", "IMPORT", "coderank",
    "popularity_rank", "precision_at_k", "top_k",
    "Editor", "EditorBoard", "TrustScorer",
]
