"""Covert-channel measurement harness (§3.5).

"Covert channels are a way to leak data without the system's consent.
For example, the SQL interface to databases can leak information
implicitly and thus needs to be replaced under W5."

This module makes that concrete and measurable.  The adversary is a
*colluding pair*: a tainted sender (it has read the victim's secret
and cannot export it) and a clean receiver (it can talk to the outside
world).  They share a database table and try to move bits through its
*metadata* — presence, absence, errors — rather than its contents.

Two storage semantics are compared (the DESIGN.md §6 ablation):

* **fail-stop** — a query that matches an unreadable row raises.  The
  receiver learns one bit per query (did it raise?): capacity 1.0
  bit/query, demonstrated by :class:`StorageChannel`.
* **label-filtered** (what :mod:`repro.db` ships) — unreadable rows
  are silently absent; the receiver's view is independent of the
  sender's behaviour and measured capacity collapses to 0.

A residual *timing* channel is also estimated: the filtered scan still
touches invisible rows, so query cost correlates with how much
invisible data exists.  :func:`timing_probe` quantifies it (in
distinguishable states) so EXPERIMENTS.md can report it honestly
alongside the mitigation (index-restricted scans or padding).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..db import LabeledStore
from ..kernel import Kernel
from ..labels import Label, LabelError

FAILSTOP = "failstop"
FILTERED = "filtered"


@dataclass
class ChannelReport:
    """Result of one transmission experiment."""

    semantics: str
    sent: list[int]
    received: list[int]

    @property
    def errors(self) -> int:
        return sum(1 for s, r in zip(self.sent, self.received) if s != r)

    @property
    def error_rate(self) -> float:
        return self.errors / len(self.sent) if self.sent else 0.0

    @property
    def capacity_bits_per_query(self) -> float:
        """Shannon capacity of the observed binary symmetric channel."""
        return binary_channel_capacity(self.error_rate)


def binary_channel_capacity(error_rate: float) -> float:
    """``1 - H(p)`` for a binary symmetric channel with error ``p``."""
    p = min(max(error_rate, 0.0), 1.0)
    if p in (0.0, 1.0):
        return 1.0
    return 1.0 + p * math.log2(p) + (1 - p) * math.log2(1 - p)


class StorageChannel:
    """The presence/absence channel through a shared table.

    Protocol: to send bit *i* = 1, the tainted sender inserts a row
    with key *i* (the row is labeled with the secret tag, as it must
    be).  The clean receiver queries key *i* and decodes:

    * fail-stop semantics: an exception means a hidden row exists → 1;
    * filtered semantics: the hidden row is simply invisible → the
      receiver sees the same empty result either way.
    """

    def __init__(self) -> None:
        self.kernel = Kernel()
        self.store = LabeledStore(self.kernel)
        provider = self.kernel.spawn_trusted("provider")
        self.secret_tag = self.kernel.create_tag(provider, purpose="victim")
        self.sender = self.kernel.spawn_trusted(
            "tainted-sender", slabel=Label([self.secret_tag]))
        self.receiver = self.kernel.spawn_trusted("clean-receiver")
        self.store.create_table(provider, "shared", indexes=["k"])

    def transmit(self, bits: Sequence[int], semantics: str) -> ChannelReport:
        """Run the protocol for ``bits``; returns the decoded report."""
        if semantics not in (FAILSTOP, FILTERED):
            raise ValueError(f"unknown semantics {semantics!r}")
        for i, bit in enumerate(bits):
            if bit:
                self.store.insert(self.sender, "shared",
                                  {"k": i, "covert": True})
        received = []
        for i in range(len(bits)):
            received.append(self._decode(i, semantics))
        return ChannelReport(semantics=semantics, sent=list(bits),
                             received=received)

    def _decode(self, key: int, semantics: str) -> int:
        if semantics == FAILSTOP:
            try:
                self.store.select_failstop(self.receiver, "shared",
                                           where={"k": key})
                return 0
            except LabelError:
                return 1
        rows = self.store.select(self.receiver, "shared", where={"k": key})
        return 1 if rows else 0


def timing_probe(invisible_rows: int, visible_rows: int = 10,
                 pad_scan_to: "int | None" = None,
                 partitioned: bool = True,
                 invisible_labels: int = 1) -> dict[str, float]:
    """Estimate the residual timing channel of filtered queries.

    Builds a table with ``visible_rows`` public rows and
    ``invisible_rows`` secret rows, runs an *unindexed* query as the
    clean receiver, and reports how many rows the scan touched — the
    quantity an adversary timing the query would observe.  The
    difference between configurations is the channel.  Two mitigations
    are measurable: an indexed query (candidate set excludes invisible
    rows for keys the adversary cannot collide with) and
    ``pad_scan_to`` (constant-cost full scans regardless of invisible
    data — the complete fix, paid for in wasted work).

    ``partitioned`` selects the storage engine (both must show the
    same costs — the C10 regression for the partitioned data plane);
    ``invisible_labels`` spreads the secret rows over that many
    distinct tags, so the probe can also show the costs are
    independent of how many invisible *partitions* exist.
    """
    from ..resources import ResourceManager
    rm = ResourceManager()
    kernel = Kernel(resources=rm)
    store = LabeledStore(kernel, partitioned=partitioned)
    provider = kernel.spawn_trusted("provider")
    tags = [kernel.create_tag(provider, purpose=f"victim{j}")
            for j in range(max(invisible_labels, 1))]
    tainted = [kernel.spawn_trusted(f"tainted{j}", slabel=Label([tag]))
               for j, tag in enumerate(tags)]
    clean = kernel.spawn_trusted("clean")
    store.create_table(provider, "t", indexes=["k"],
                       pad_scan_to=pad_scan_to)
    for i in range(visible_rows):
        store.insert(provider, "t", {"k": "public", "i": i})
    for i in range(invisible_rows):
        store.insert(tainted[i % len(tainted)], "t",
                     {"k": "hidden", "i": i})

    before = rm.usage_of(clean).get("db_rows_scanned")
    store.select(clean, "t", predicate=lambda r: True)  # full scan
    full_scan_cost = rm.usage_of(clean).get("db_rows_scanned") - before

    before = rm.usage_of(clean).get("db_rows_scanned")
    store.select(clean, "t", where={"k": "public"})     # indexed
    indexed_cost = rm.usage_of(clean).get("db_rows_scanned") - before

    return {"full_scan_rows_touched": full_scan_cost,
            "indexed_rows_touched": indexed_cost,
            "visible_rows": float(visible_rows),
            "invisible_rows": float(invisible_rows)}
