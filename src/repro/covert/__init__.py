"""Covert-channel measurement: storage and timing channels (§3.5)."""

from .channels import (FAILSTOP, FILTERED, ChannelReport, StorageChannel,
                       binary_channel_capacity, timing_probe)

__all__ = [
    "FAILSTOP", "FILTERED", "ChannelReport", "StorageChannel",
    "binary_channel_capacity", "timing_probe",
]
