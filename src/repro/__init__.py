"""W5 — World Wide Web Without Walls: a full-system reproduction.

A DIFC-based web platform (Brodsky, Krohn, Morris, Walfish, Yip;
HotNets 2007 / MIT-CSAIL-TR-2007-043) built end to end in Python:
label algebra, reference monitor, labeled storage, security-perimeter
gateway, declassifiers, the meta-application hosting layer, the
surrounding eco-system (code search, federation, resource policing),
and the status-quo baselines the paper argues against.

Quickstart::

    from repro import W5System

    w5 = W5System()
    bob = w5.add_user("bob", apps=["photo-share"], friends=["amy"])
    amy = w5.add_user("amy", apps=["photo-share"], friends=["bob"])
    bob.get("/app/photo-share/upload", filename="x.jpg", data="<jpeg>")
    amy.get("/app/photo-share/view", owner="bob", filename="x.jpg").body

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
claim-by-claim reproduction record.
"""

from .core import W5System
from .platform import AppContext, AppModule, Provider

__version__ = "1.0.0"

__all__ = ["W5System", "AppContext", "AppModule", "Provider", "__version__"]
