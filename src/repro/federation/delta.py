"""Journal-cursor delta sync: O(dirty) federation rounds (M15).

The naive reconciler in :mod:`repro.federation.peering` is the honest
baseline: every round it lists the user's whole home, reads every file
on *both* providers, and re-selects every table row — O(corpus) per
round, quadratic over a session.  This module replaces the discovery
step with the M10 write-ahead journal: each side of a link keeps a
per-(user, peer) :class:`~repro.core.journal.JournalCursor`, and a
round only looks at journal records past the cursor that touch the
linked user.  Content still moves through agents holding exactly the
user's authority, batched as content-addressed envelopes
(:mod:`repro.net.envelopes`), so the round costs O(dirty), not
O(corpus) — the M15 benchmark's ~flat line.

**The journal is an index, never a data source.**  Tail records tell
the engine *which* paths and rows changed; the engine re-reads current
state through the reference monitor before shipping.  A forged or
stale record can therefore cause wasted work, never a policy bypass.

**Cursor safety.**  A cursor is only honored by the exact journal
instance and epoch it was minted from (``Journal.tail_from`` returns
``None`` otherwise).  Compaction, operator checkpoints, and crash
recovery all reset the journal; the next sync round detects the stale
cursor and falls back to one full content-based reconciliation — the
naive algorithm, byte-identical in outcome — then re-attaches a fresh
cursor.  Safety never depends on the cursor being right.

**Equivalence with the naive twin.**  Every divergence-prone corner of
the naive reconciler is reproduced deliberately:

* files: per touched path, A's copy wins a conflict; a file deleted on
  one side is resurrected from the other (the naive pump never
  deletes);
* rows: the mirror is append-only; candidate rows are checked against
  a snapshot of the destination's visible content keys taken *before*
  the round's inserts (naive computes ``existing`` once per pump), so
  duplicate source rows ship as duplicates;
* rows deleted or updated away on one side are re-filled from the
  other side's live rows, exactly as the naive content comparison
  would.

``tests/federation/test_delta_differential.py`` drives both engines
through identical random schedules and asserts identical final file
and row state (labels included) on every provider.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from ..core.journal import Journal, JournalCursor, JournalRecord
from ..fs import FsView
from ..labels import Label
from ..net.envelopes import Envelope, EnvelopeChannel, content_digest

from .peering import _row_key

if TYPE_CHECKING:  # pragma: no cover
    from ..platform import Provider
    from .peering import ProviderLink, SyncState


class _SideBooks:
    """Per-(user, side) row bookkeeping: which content keys are live.

    Mirrors what the naive pump's ``existing`` select would see on
    this side — every row whose secrecy label is within the user's
    clearance (exactly her tag, or public) — maintained incrementally
    from the side's journal tail instead of re-selected per round.
    """

    def __init__(self) -> None:
        #: table -> row_id -> content key
        self.key_by_id: dict[str, dict[int, frozenset]] = {}
        #: table -> content key -> live row ids
        self.ids_by_key: dict[str, dict[frozenset, set[int]]] = {}

    def known(self, table: str) -> set[frozenset]:
        """The content keys currently live on this side (the naive
        ``existing`` set)."""
        return set(self.ids_by_key.get(table, ()))

    def ids_for(self, table: str, key: frozenset) -> set[int]:
        return self.ids_by_key.get(table, {}).get(key, set())

    def track(self, table: str, row_id: int, key: frozenset) -> None:
        self.key_by_id.setdefault(table, {})[row_id] = key
        self.ids_by_key.setdefault(table, {}).setdefault(
            key, set()).add(row_id)

    def untrack(self, table: str, row_id: int) -> Optional[frozenset]:
        """Forget a row; returns its key iff no live row covers that
        key any more (i.e. the key truly vanished from this side)."""
        key = self.key_by_id.get(table, {}).pop(row_id, None)
        if key is None:
            return None
        ids = self.ids_by_key.get(table, {})
        holders = ids.get(key)
        if holders is not None:
            holders.discard(row_id)
            if not holders:
                del ids[key]
                return key
        return None

    def drop_table(self, table: str) -> set[frozenset]:
        """The side dropped a whole table; every key vanished."""
        self.key_by_id.pop(table, None)
        return set(self.ids_by_key.pop(table, ()))


class _UserDelta:
    """All per-(user, link) incremental state."""

    def __init__(self) -> None:
        self.cursors: dict[str, Optional[JournalCursor]] = {
            "a": None, "b": None}
        self.books = {"a": _SideBooks(), "b": _SideBooks()}
        #: side -> table -> content keys that vanished from that side
        #: since the last round (deletes, updates-away, table drops);
        #: the pump *into* that side re-fills them from the peer.
        self.vanished: dict[str, dict[str, set[frozenset]]] = {
            "a": {}, "b": {}}

    def mark_vanished(self, side: str, table: str, key: frozenset) -> None:
        self.vanished[side].setdefault(table, set()).add(key)


class DeltaSync:
    """The per-link delta engine behind ``FederationConfig.delta_sync``."""

    def __init__(self, link: "ProviderLink") -> None:
        self.link = link
        self._users: dict[str, _UserDelta] = {}
        #: One envelope channel per direction; the name encodes the
        #: destination.  File digests cached here are invalidated by
        #: the destination's own journal tail (foreign writes).
        self.channels = {
            "ab": EnvelopeChannel(f"{link.a.name}->{link.b.name}"),
            "ba": EnvelopeChannel(f"{link.b.name}->{link.a.name}"),
        }
        self._stats = {"delta_rounds": 0, "full_recons": 0,
                       "fallback_rounds": 0, "files_reconciled": 0,
                       "rows_shipped": 0}

    # -- public API --------------------------------------------------------

    def sync(self, state: "SyncState") -> int:
        link = self.link
        journal_a = self._journal(link.a)
        journal_b = self._journal(link.b)
        if journal_a is None or journal_b is None:
            # A side without incremental persistence has nothing to
            # tail; every round is the honest full reconciliation.
            self._stats["fallback_rounds"] += 1
            return link._naive_round(state)
        user = self._users.setdefault(state.username, _UserDelta())
        tail_a = journal_a.tail_from(user.cursors["a"])
        tail_b = journal_b.tail_from(user.cursors["b"])
        if tail_a is None or tail_b is None:
            # First sync, compaction, checkpoint, or crash recovery:
            # the cursor is stale, so run one full content-based
            # reconciliation and mint fresh cursors against the
            # *post-reconciliation* positions (our own writes are
            # already reflected, so they are never echoed back).
            moved = self._full_recon(state, user)
            user.cursors["a"] = journal_a.position()
            user.cursors["b"] = journal_b.position()
            self._stats["full_recons"] += 1
            return moved
        self._stats["delta_rounds"] += 1
        touched: set[str] = set()
        candidates: dict[str, dict[str, set[int]]] = {"a": {}, "b": {}}
        self._ingest(state, user, "a", tail_a, touched, candidates["a"])
        self._ingest(state, user, "b", tail_b, touched, candidates["b"])
        moved = self._reconcile_files(state, sorted(touched))
        moved += self._pump_rows(state, user, "a", "b", candidates["a"])
        moved += self._pump_rows(state, user, "b", "a", candidates["b"])
        user.vanished["a"].clear()
        user.vanished["b"].clear()
        user.cursors["a"] = journal_a.position()
        user.cursors["b"] = journal_b.position()
        return moved

    def invalidate(self) -> None:
        """Drop every cursor, book, and digest cache (a provider was
        replaced under the link): the next round per user is a full
        reconciliation against the new instance.  Known users are kept
        with nulled cursors rather than forgotten, so the link's
        :func:`~repro.obs.fabric_health` staleness gauge shows the
        pending full reconciliation until the next sync round."""
        for user in self._users.values():
            user.cursors["a"] = user.cursors["b"] = None
            user.books = {"a": _SideBooks(), "b": _SideBooks()}
            user.vanished = {"a": {}, "b": {}}
        for channel in self.channels.values():
            channel.clear()

    def stats(self) -> dict[str, Any]:
        out: dict[str, Any] = dict(self._stats)
        for name, channel in self.channels.items():
            for k, v in channel.stats.items():
                out[k] = out.get(k, 0) + v
            out[f"{name}_envelopes_sent"] = channel.stats["envelopes_sent"]
        out["cursor_lag"] = self.cursor_lag()
        return out

    def cursor_lag(self) -> dict[str, dict[str, Optional[int]]]:
        """Per-user records each side has journaled past the link's
        cursor (``None`` = no valid cursor yet)."""
        lag: dict[str, dict[str, Optional[int]]] = {}
        for username, user in self._users.items():
            entry: dict[str, Optional[int]] = {}
            for side, provider in (("a", self.link.a), ("b", self.link.b)):
                journal = self._journal(provider)
                cursor = user.cursors[side]
                if journal is None or cursor is None \
                        or cursor.journal_id != journal.journal_id \
                        or cursor.epoch != journal.epoch:
                    entry[side] = None
                else:
                    entry[side] = journal.seq - cursor.seq
            lag[username] = entry
        return lag

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _journal(provider: "Provider") -> Optional[Journal]:
        manager = provider._durability
        return None if manager is None else manager.journal

    def _provider(self, side: str) -> "Provider":
        return self.link.a if side == "a" else self.link.b

    def _channel_into(self, side: str) -> EnvelopeChannel:
        """The channel whose *destination* is ``side``."""
        return self.channels["ab" if side == "b" else "ba"]

    def _transfer(self, channel: EnvelopeChannel,
                  envelopes: list[Envelope],
                  apply: Callable[[Envelope], None],
                  dst_side: str) -> int:
        """Run ``channel.transfer_batch`` with the right tracer wiring.

        The ``fed.sync`` root span lives on side A's tracer (peering
        opens it there).  When the destination *is* side A the
        ``fed.envelope`` span nests inline; when it's side B — a
        different provider with its own tracer — the root's
        :class:`~repro.obs.TraceContext` crosses the link so the
        destination-side span is captured as a skeleton and grafted
        back under ``fed.sync`` (M16 trace propagation)."""
        root_tracer = self.link.a.tracer
        dst_tracer = self._provider(dst_side).tracer
        if dst_side == "a" or not dst_tracer.enabled:
            return channel.transfer_batch(envelopes, apply,
                                          tracer=root_tracer)
        ctx = root_tracer.export_context() if root_tracer.enabled else None
        return channel.transfer_batch(
            envelopes, apply, tracer=dst_tracer, ctx=ctx,
            graft=root_tracer.graft if ctx is not None else None)

    def _full_recon(self, state: "SyncState", user: _UserDelta) -> int:
        """The naive twin, plus bookkeeping rebuild: after it, books
        and digest caches describe the converged state exactly."""
        link = self.link
        moved = link._naive_round(state)
        username = state.username
        for side in ("a", "b"):
            provider = self._provider(side)
            books = user.books[side] = _SideBooks()
            tag_id = provider.account(username).data_tag.tag_id
            for table_name in provider.db.tables():
                table = provider.db.table(table_name)
                for row in table.rows.values():
                    if {t.tag_id for t in row.slabel} <= {tag_id}:
                        books.track(table_name, row.row_id,
                                    _row_key(row.values))
        user.vanished["a"].clear()
        user.vanished["b"].clear()
        # Prime the digest caches from the converged file state: one
        # agent-checked read per file per side, the same cost the
        # reconciliation itself just paid.
        for side in ("a", "b"):
            provider = self._provider(side)
            channel = self._channel_into(side)
            channel.clear()
            agent = link._agent(provider, username)
            try:
                fs = FsView(provider.fs, agent)
                home = f"/users/{username}"
                for name in fs.listdir(home):
                    path = f"{home}/{name}"
                    if not fs.stat(path)["is_dir"]:
                        channel.note(path, content_digest(fs.read(path)))
            finally:
                provider.kernel.exit(agent)
        return moved

    def _ingest(self, state: "SyncState", user: _UserDelta, side: str,
                tail: list[JournalRecord], touched: set[str],
                candidates: dict[str, set[int]]) -> None:
        """Fold one side's journal tail into dirty sets + bookkeeping.

        Tail payloads are treated strictly as pointers: rows are
        re-resolved against the side's *live* table so a row created
        and deleted inside the window never ships, and an updated row
        ships its current content exactly once.
        """
        username = state.username
        provider = self._provider(side)
        books = user.books[side]
        into_side = self._channel_into(side)
        tag_id = provider.account(username).data_tag.tag_id
        user_label = [tag_id]
        home = f"/users/{username}/"
        for record in tail:
            op = record.op
            data = record.data
            if op in ("fs.create", "fs.write", "fs.delete"):
                path = data["path"]
                if path.startswith(home) and "/" not in path[len(home):]:
                    touched.add(path)
                    # this side's content changed behind the cache
                    into_side.forget(path)
            elif op == "db.insert":
                if not set(data["slabel"]) <= {tag_id}:
                    continue  # invisible to the user's agent
                table_name = data["table"]
                row = self._live_row(provider, table_name, data["row_id"])
                if row is None:
                    continue  # born and deleted inside the window
                books.track(table_name, row.row_id, _row_key(row.values))
                if data["slabel"] == user_label:
                    candidates.setdefault(table_name, set()).add(row.row_id)
            elif op == "db.update":
                table_name = data["table"]
                tracked = books.key_by_id.get(table_name, {})
                for row_id in data["rows"]:
                    old_key = tracked.get(row_id)
                    if old_key is None:
                        continue  # a row the user's agent cannot see
                    row = self._live_row(provider, table_name, row_id)
                    if row is None:
                        continue  # its delete record follows
                    new_key = _row_key(row.values)
                    if new_key != old_key:
                        gone = books.untrack(table_name, row_id)
                        if gone is not None:
                            user.mark_vanished(side, table_name, gone)
                        books.track(table_name, row_id, new_key)
                    if row.slabel == Label(
                            [provider.account(username).data_tag]):
                        candidates.setdefault(table_name, set()).add(row_id)
            elif op in ("db.delete", "db.purge"):
                table_name = data["table"]
                for row_id in data["rows"]:
                    gone = books.untrack(table_name, row_id)
                    if gone is not None:
                        user.mark_vanished(side, table_name, gone)
            elif op == "db.drop_table":
                for key in books.drop_table(data["name"]):
                    user.mark_vanished(side, data["name"], key)

    @staticmethod
    def _live_row(provider: "Provider", table_name: str, row_id: int):
        if table_name not in provider.db.tables():
            return None
        return provider.db.table(table_name).rows.get(row_id)

    # -- file reconciliation ----------------------------------------------

    def _reconcile_files(self, state: "SyncState",
                         paths: Iterable[str]) -> int:
        """Content-reconcile exactly the touched paths, A first.

        Semantics per path match the naive pump pair: both present and
        different → A wins; present on one side only → copied to the
        other (deletions resurrect); directories are never synced.
        """
        paths = list(paths)
        if not paths:
            return 0
        link = self.link
        username = state.username
        agent_a = link._agent(link.a, username)
        agent_b = link._agent(link.b, username)
        moved = 0
        try:
            fs_a = FsView(link.a.fs, agent_a)
            fs_b = FsView(link.b.fs, agent_b)
            channel_ab = self.channels["ab"]
            channel_ba = self.channels["ba"]
            ship_ab: list[Envelope] = []
            ship_ba: list[Envelope] = []
            for path in paths:
                a_has = fs_a.exists(path) and not fs_a.stat(path)["is_dir"]
                b_has = fs_b.exists(path) and not fs_b.stat(path)["is_dir"]
                if a_has:
                    data_a = fs_a.read(path)
                    digest_a = content_digest(data_a)
                    channel_ba.note(path, digest_a)
                    envelope = Envelope("file", path, digest_a, data_a)
                    if b_has:
                        if channel_ab.dedup(envelope):
                            continue  # destination provably unchanged
                        if fs_b.read(path) != data_a:
                            ship_ab.append(envelope)
                        else:
                            channel_ab.note(path, digest_a)
                    else:
                        ship_ab.append(envelope)
                elif b_has:
                    data_b = fs_b.read(path)
                    digest_b = content_digest(data_b)
                    channel_ab.note(path, digest_b)
                    ship_ba.append(Envelope("file", path, digest_b, data_b))
            moved += self._transfer(
                channel_ab, ship_ab,
                lambda e: self._apply_file(fs_b, e, state), "b")
            moved += self._transfer(
                channel_ba, ship_ba,
                lambda e: self._apply_file(fs_a, e, state), "a")
        finally:
            link.a.kernel.exit(agent_a)
            link.b.kernel.exit(agent_b)
        self._stats["files_reconciled"] += len(paths)
        return moved

    @staticmethod
    def _apply_file(fs: FsView, envelope: Envelope,
                    state: "SyncState") -> None:
        if fs.exists(envelope.key):
            fs.write(envelope.key, envelope.payload)
        else:
            fs.create(envelope.key, envelope.payload)
        state.transfers += 1

    # -- row mirroring -----------------------------------------------------

    def _pump_rows(self, state: "SyncState", user: _UserDelta,
                   src_side: str, dst_side: str,
                   candidates: dict[str, set[int]]) -> int:
        """Mirror dirty rows src → dst (append-only, like the naive
        twin): candidates from the source tail plus re-fills for keys
        that vanished from the destination, all checked against the
        destination's pre-round visible-key snapshot."""
        link = self.link
        username = state.username
        src = self._provider(src_side)
        dst = self._provider(dst_side)
        src_books = user.books[src_side]
        dst_books = user.books[dst_side]
        vanished_dst = user.vanished[dst_side]
        tables = sorted(set(candidates)
                        | {t for t, keys in vanished_dst.items() if keys})
        if not tables:
            return 0
        src_tag = src.account(username).data_tag
        user_slabel = Label([src_tag])
        channel = self._channel_into(dst_side)
        moved = 0
        src_agent = link._agent(src, username)
        dst_agent = link._agent(dst, username)
        try:
            for table_name in tables:
                if table_name not in src.db.tables():
                    continue  # nothing to re-fill from
                table = src.db.table(table_name)
                known_dst = dst_books.known(table_name)
                row_ids = set(candidates.get(table_name, ()))
                for key in vanished_dst.get(table_name, ()):
                    row_ids |= src_books.ids_for(table_name, key)
                envelopes: list[Envelope] = []
                for row_id in sorted(row_ids):
                    row = table.rows.get(row_id)
                    if row is None or row.slabel != user_slabel:
                        continue
                    if _row_key(row.values) in known_dst:
                        continue
                    values = dict(row.values)
                    envelopes.append(Envelope(
                        "row", table_name, content_digest(values), values))
                if not envelopes:
                    continue
                if table_name not in dst.db.tables():
                    dst.db.create_table(dst_agent, table_name,
                                        indexes=table.indexed_columns)

                def apply(envelope: Envelope, _table=table_name) -> None:
                    row_id = dst.db.insert(dst_agent, _table,
                                           envelope.payload)
                    dst_books.track(_table, row_id,
                                    _row_key(envelope.payload))
                    state.transfers += 1

                moved += self._transfer(channel, envelopes, apply,
                                        dst_side)
        finally:
            src.kernel.exit(src_agent)
            dst.kernel.exit(dst_agent)
        self._stats["rows_shipped"] += moved
        return moved
