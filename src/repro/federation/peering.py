"""Multi-provider W5: account linking and data mirroring (§3.3).

"One approach is to create import/export declassifiers that
synchronize user data between two W5 providers.  If an end-user deemed
such applications trustworthy, it would give its privileges to data
transfer applications on both platforms A and B.  Then, whenever the
user updated his data on one platform, the changes would propagate to
the other."

A :class:`ProviderLink` is a peering arrangement between two
providers.  Linking an account creates a *sync pair*: on each side, a
transfer agent holding exactly the privileges the user granted there
(her ``t-`` to export, her ``w+``/``t+`` to import).  ``sync_user``
runs rounds of bidirectional reconciliation over the user's home
files and rows, and the mirrored copy lands under the *destination*
provider's tags — so the data is exactly as protected on B as it was
on A (verified in experiment C6).

Two reconciliation engines share those semantics (selected by
:class:`FederationConfig`):

* the **naive twin** (``delta_sync=False``) re-reads everything both
  sides hold, every round — O(corpus), trivially correct;
* the **delta engine** (``delta_sync=True``, the default) tails each
  provider's write-ahead journal from a per-(user, peer) cursor and
  reconciles only what changed — O(dirty), falling back to one naive
  round whenever a cursor goes stale (first sync, compaction, crash
  recovery).  See :mod:`repro.federation.delta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..fs import FsView
from ..kernel import Process
from ..labels import CapabilitySet, Label
from ..platform import NoSuchUser, NotAuthorized, Provider


class SyncError(Exception):
    """Linking or sync failed (missing account or missing grant)."""


@dataclass(frozen=True)
class FederationConfig:
    """How a :class:`ProviderLink` reconciles.

    ``delta_sync=True`` (default) uses the journal-cursor delta engine
    with content-addressed envelope transport; ``delta_sync=False``
    keeps the original full content-based reconciler.  Both converge
    to byte-identical state (proven by the differential test in
    ``tests/federation/test_delta_differential.py``).
    """

    delta_sync: bool = True

    @staticmethod
    def delta() -> "FederationConfig":
        return FederationConfig(delta_sync=True)

    @staticmethod
    def naive() -> "FederationConfig":
        return FederationConfig(delta_sync=False)


@dataclass
class SyncState:
    """Per-(user, link) bookkeeping."""

    username: str
    granted_on_a: bool = False
    granted_on_b: bool = False
    transfers: int = 0


class ProviderLink:
    """A peering arrangement between two providers."""

    def __init__(self, provider_a: Provider, provider_b: Provider,
                 config: Optional[FederationConfig] = None) -> None:
        if provider_a is provider_b:
            raise SyncError("a provider cannot peer with itself")
        self.a = provider_a
        self.b = provider_b
        self.config = config if config is not None else FederationConfig()
        self._states: dict[str, SyncState] = {}
        if self.config.delta_sync:
            from .delta import DeltaSync
            self._delta: Optional[Any] = DeltaSync(self)
        else:
            self._delta = None

    # ------------------------------------------------------------------
    # user-driven setup
    # ------------------------------------------------------------------

    def link_account(self, username: str) -> SyncState:
        """Declare that ``username``'s accounts on A and B are the same
        person.  Both accounts must exist; no privileges move yet."""
        self.a.account(username)  # raises NoSuchUser if absent
        self.b.account(username)
        state = self._states.setdefault(username, SyncState(username))
        return state

    def grant_sync(self, username: str, on: str = "both") -> SyncState:
        """The user hands the transfer agents her privileges (§3.3:
        "it would give its privileges to data transfer applications on
        both platforms")."""
        state = self._states.get(username)
        if state is None:
            raise SyncError(f"{username} has not linked accounts")
        if on in ("a", "both"):
            state.granted_on_a = True
        if on in ("b", "both"):
            state.granted_on_b = True
        return state

    def state_of(self, username: str) -> Optional[SyncState]:
        return self._states.get(username)

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------

    def sync_user(self, username: str) -> int:
        """One bidirectional reconciliation round; returns the number
        of files and rows transferred.  Requires grants on both sides.

        With ``delta_sync`` the round tails each side's journal from
        this link's cursor and touches only dirty entries; otherwise
        it is a full content-based reconciliation.  Either way the
        outcome is identical (see :class:`FederationConfig`).
        """
        state = self._states.get(username)
        if state is None:
            raise SyncError(f"{username} has not linked accounts")
        if not (state.granted_on_a and state.granted_on_b):
            raise NotAuthorized(
                f"{username} has not granted the sync declassifiers on "
                f"both providers")
        tracer = self.a.tracer
        if tracer.enabled:
            with tracer.request("fed.sync", user=username,
                                link=f"{self.a.name}<->{self.b.name}"):
                return self._sync_round(state)
        return self._sync_round(state)

    def _sync_round(self, state: SyncState) -> int:
        if self._delta is not None:
            return self._delta.sync(state)
        return self._naive_round(state)

    def _naive_round(self, state: SyncState) -> int:
        """One full content-based round: the trivially-correct twin
        the delta engine must match byte-for-byte, and its fallback
        whenever a journal cursor is stale."""
        moved = 0
        moved += self._pump(state, self.a, self.b)
        moved += self._pump(state, self.b, self.a)
        moved += self._pump_rows(state, self.a, self.b)
        moved += self._pump_rows(state, self.b, self.a)
        return moved

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------

    def replace_provider(self, old: Provider, new: Provider) -> None:
        """Swap a recovered provider instance into the link (M10 crash
        recovery).  The new instance has a fresh journal (new id, new
        epoch), so every cursor this link holds is stale by
        construction; the delta engine drops them and the next
        ``sync_user`` per user runs one full reconciliation before
        re-attaching fresh cursors — recovery can never cause a missed
        or duplicated transfer."""
        if old is self.a:
            self.a = new
        elif old is self.b:
            self.b = new
        else:
            raise SyncError("provider is not part of this link")
        if self._delta is not None:
            self._delta.invalidate()

    def federation_stats(self) -> dict[str, Any]:
        """Counters for ``Metrics.attach``: engine rounds, envelope
        traffic, and per-user cursor lag."""
        out: dict[str, Any] = {
            "link": f"{self.a.name}<->{self.b.name}",
            "delta_sync": self.config.delta_sync,
            "linked_users": len(self._states),
            "transfers": sum(s.transfers for s in self._states.values()),
        }
        if self._delta is not None:
            out.update(self._delta.stats())
        return out

    # ------------------------------------------------------------------
    # the naive pumps (shared with the delta engine's fallback)
    # ------------------------------------------------------------------

    def _pump(self, state: SyncState, src: Provider, dst: Provider) -> int:
        """Copy src-side files whose *content* differs on dst.

        Reconciliation here is purely content-based — there is no
        notion of "newer": a file is copied when the destination lacks
        it or holds different bytes, and ``sync_user`` pumps A first
        so conflicts resolve in A's favor.  (The delta engine reaches
        the same outcome from the other end: journal cursors tell it
        *which* paths changed since the last round, and only those are
        content-compared.)
        """
        username = state.username
        src_agent = self._agent(src, username)
        dst_agent = self._agent(dst, username)
        src_fs = FsView(src.fs, src_agent)
        dst_fs = FsView(dst.fs, dst_agent)
        home_src = f"/users/{username}"
        home_dst = f"/users/{username}"
        moved = 0
        try:
            names = src_fs.listdir(home_src)
            for name in names:
                path_src = f"{home_src}/{name}"
                if src_fs.stat(path_src)["is_dir"]:
                    continue  # top-level files only; apps use subtrees
                data = src_fs.read(path_src)
                path_dst = f"{home_dst}/{name}"
                if dst_fs.exists(path_dst):
                    if dst_fs.read(path_dst) != data:
                        dst_fs.write(path_dst, data)
                        moved += 1
                        state.transfers += 1
                else:
                    dst_fs.create(path_dst, data)
                    moved += 1
                    state.transfers += 1
        finally:
            src.kernel.exit(src_agent)
            dst.kernel.exit(dst_agent)
        return moved

    def _pump_rows(self, state: SyncState, src: Provider,
                   dst: Provider) -> int:
        """Mirror the linked user's *database rows* (append-only).

        A row belongs to the user when its secrecy label is exactly
        their tag on that provider.  Rows are identified by content
        (the sync declassifier has no cross-provider row ids), so this
        is an append-only mirror: new rows propagate, edits appear as
        additional rows on the peer.  Applications treating the store
        as a log (blog posts, guestbook entries) mirror perfectly;
        last-write-wins tables should sync through files instead.
        """
        username = state.username
        src_tag = src.account(username).data_tag
        src_agent = self._agent(src, username)
        dst_agent = self._agent(dst, username)
        moved = 0
        try:
            for table_name in src.db.tables():
                table = src.db.table(table_name)
                user_rows = [
                    row for row in table.rows.values()
                    if row.slabel == Label([src_tag])]
                if not user_rows:
                    continue
                if table_name not in dst.db.tables():
                    dst.db.create_table(dst_agent, table_name,
                                        indexes=table.indexed_columns)
                existing = {
                    _row_key(r)
                    for r in dst.db.select(dst_agent, table_name)}
                for row in user_rows:
                    if _row_key(row.values) in existing:
                        continue
                    dst.db.insert(dst_agent, table_name,
                                  dict(row.values))
                    moved += 1
                    state.transfers += 1
        finally:
            src.kernel.exit(src_agent)
            dst.kernel.exit(dst_agent)
        return moved

    def _agent(self, provider: Provider, username: str) -> Process:
        """The transfer agent on one side: a process holding exactly
        the linked user's authority there — the import/export
        declassifier of §3.3."""
        account = provider.account(username)
        return provider.kernel.spawn_trusted(
            f"sync-agent:{username}",
            slabel=Label([account.data_tag]),
            ilabel=Label([account.write_tag]),
            caps=CapabilitySet.owning(account.data_tag, account.write_tag),
            owner_user=username)


def _row_key(values: dict) -> frozenset:
    """Content identity for append-only row mirroring."""
    return frozenset((k, repr(v)) for k, v in values.items())


def converged(link: ProviderLink, username: str) -> bool:
    """True iff the user's top-level files are identical on A and B."""
    a_files = _snapshot(link.a, username)
    b_files = _snapshot(link.b, username)
    return a_files == b_files


def _snapshot(provider: Provider, username: str) -> dict[str, Any]:
    account = provider.account(username)
    agent = provider.kernel.spawn_trusted(
        f"snapshot:{username}",
        slabel=Label([account.data_tag]),
        caps=CapabilitySet.owning(account.data_tag, account.write_tag),
        owner_user=username)
    out: dict[str, Any] = {}
    try:
        fs = FsView(provider.fs, agent)
        home = f"/users/{username}"
        for name in fs.listdir(home):
            path = f"{home}/{name}"
            if not fs.stat(path)["is_dir"]:
                out[name] = fs.read(path)
    finally:
        provider.kernel.exit(agent)
    return out
