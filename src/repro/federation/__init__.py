"""Multi-provider W5: peering, linked accounts, mirrored data (§3.3).

Two layers: :mod:`peering` is the pairwise sync declassifier from the
paper (with its journal-cursor delta engine in :mod:`delta`), and
:mod:`fabric` scales it to N providers behind a consistent-hash
directory (M15).
"""

from .delta import DeltaSync
from .fabric import FederationFabric, ProviderDown
from .peering import (FederationConfig, ProviderLink, SyncError, SyncState,
                      converged)

__all__ = [
    "DeltaSync",
    "FederationFabric", "ProviderDown",
    "FederationConfig", "ProviderLink", "SyncError", "SyncState",
    "converged",
]
