"""Multi-provider W5: peering, linked accounts, mirrored data (§3.3)."""

from .peering import ProviderLink, SyncError, SyncState, converged

__all__ = ["ProviderLink", "SyncError", "SyncState", "converged"]
