"""A consistent-hash fabric of federated providers (M15).

The paper's answer to walled gardens (§3.3) is pairwise: two providers
and a sync declassifier.  The north star needs *hundreds* of
providers, which demands a directory: given a username, which provider
is their home?  :class:`FederationFabric` answers with the M13
consistent-hash ring (:class:`~repro.platform.ShardMap`) — placement
is a pure function of the username, stable across processes, so any
provider (or client) can route a request to the right home without a
central registry, and resizing the ring moves only O(1/N) of users.

On top of placement the fabric manages:

* **mirrors** — a user can mirror their home onto other providers;
  each (home, mirror) pair gets a :class:`ProviderLink` (delta sync by
  default) with the user linked and granted on both sides;
* **routed reads** — ``read_user_data`` looks the home up in the ring
  and reads there; if the home is down, the read fails over to a live
  mirror (the mirrored copy is as protected as the original — C6 — so
  this changes availability, never policy);
* **failure + recovery** — ``crash(i)`` captures the provider's
  durable state (base snapshot + journal bytes, exactly what M10
  persists) and takes it offline; ``recover(i)`` rebuilds it with
  :func:`~repro.platform.recover_provider` and swaps it back into
  every link.  The recovered journal has a fresh identity, so every
  delta-sync cursor into it is stale by construction: the next sync
  round per user runs one full content-based reconciliation, then
  re-attaches fresh cursors.  Recovery can never cause a missed or
  duplicated transfer — at worst it costs one naive round.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from ..platform import (NoSuchUser, Provider, ProviderConfig, ShardMap,
                        recover_provider)
from .peering import FederationConfig, ProviderLink, SyncError


class ProviderDown(Exception):
    """The addressed provider has crashed and was not yet recovered."""


class FederationFabric:
    """N providers, one consistent-hash directory, delta-synced links."""

    def __init__(self, n_providers: int,
                 federation: Optional[FederationConfig] = None,
                 provider_config: Optional[ProviderConfig] = None,
                 tracing: bool = False,
                 name_prefix: str = "w5") -> None:
        if n_providers < 2:
            raise SyncError("a fabric needs at least two providers")
        self.ring = ShardMap(n_providers)
        self.federation = federation if federation is not None \
            else FederationConfig()
        self._provider_config = provider_config
        self._tracing = tracing
        self.providers: list[Optional[Provider]] = [
            Provider(name=f"{name_prefix}-{i}", config=provider_config,
                     tracing=tracing)
            for i in range(n_providers)]
        #: (lo, hi) provider-index pair -> the link between them.
        self._links: dict[tuple[int, int], ProviderLink] = {}
        #: username -> mirror provider indices (home not included).
        self._mirrors: dict[str, set[int]] = {}
        self._passwords: dict[str, str] = {}
        #: crashed index -> (old instance, base snapshot, journal bytes)
        self._wreckage: dict[int, tuple[Provider, dict, bytes]] = {}

    # ------------------------------------------------------------------
    # directory
    # ------------------------------------------------------------------

    def home_of(self, username: str) -> int:
        """The ring position that is ``username``'s home provider."""
        return self.ring.shard_of_user(username)

    def provider(self, index: int) -> Provider:
        provider = self.providers[index]
        if provider is None:
            raise ProviderDown(f"provider {index} is down")
        return provider

    def home_provider(self, username: str) -> Provider:
        return self.provider(self.home_of(username))

    # ------------------------------------------------------------------
    # accounts and mirrors
    # ------------------------------------------------------------------

    def signup(self, username: str, password: str) -> int:
        """Create the account on its ring-assigned home; returns the
        home index."""
        home = self.home_of(username)
        self.provider(home).signup(username, password)
        self._passwords[username] = password
        self._mirrors.setdefault(username, set())
        return home

    def mirror(self, username: str, index: int) -> ProviderLink:
        """Mirror ``username`` onto provider ``index``: create the
        twin account there, link it to the home account, and grant the
        sync declassifiers on both sides."""
        if username not in self._passwords:
            raise NoSuchUser(username)
        home = self.home_of(username)
        if index == home:
            raise SyncError(f"provider {index} is already {username}'s home")
        mirror = self.provider(index)
        try:
            mirror.account(username)
        except NoSuchUser:
            mirror.signup(username, self._passwords[username])
        link = self.link_between(home, index)
        link.link_account(username)
        link.grant_sync(username)
        self._mirrors[username].add(index)
        return link

    def mirrors_of(self, username: str) -> set[int]:
        return set(self._mirrors.get(username, ()))

    def link_between(self, i: int, j: int) -> ProviderLink:
        """The (lazily created) link between two providers.  The
        lower-indexed provider is side A, so conflict resolution is
        deterministic fabric-wide."""
        if i == j:
            raise SyncError("a provider cannot peer with itself")
        key = (min(i, j), max(i, j))
        link = self._links.get(key)
        if link is None:
            link = ProviderLink(self.provider(key[0]),
                                self.provider(key[1]),
                                config=self.federation)
            self._links[key] = link
        return link

    def links(self) -> list[ProviderLink]:
        return list(self._links.values())

    # ------------------------------------------------------------------
    # routed data plane
    # ------------------------------------------------------------------

    def store_user_data(self, username: str, filename: str,
                        content: Any) -> None:
        """Write through the ring: the home provider takes the write."""
        self.home_provider(username).store_user_data(
            username, filename, content)

    def read_user_data(self, username: str, filename: str) -> Any:
        """Cross-provider declassified read, routed through home
        lookup; fails over to a live mirror when the home is down."""
        home = self.home_of(username)
        if self.providers[home] is not None:
            return self.providers[home].read_user_data(username, filename)
        for index in sorted(self._mirrors.get(username, ())):
            provider = self.providers[index]
            if provider is not None:
                return provider.read_user_data(username, filename)
        raise ProviderDown(
            f"{username}'s home (provider {home}) is down and no live "
            f"mirror holds their data")

    def sync_user(self, username: str) -> int:
        """One sync round over each of the user's (home, mirror)
        links; returns total files + rows moved."""
        home = self.home_of(username)
        moved = 0
        for index in sorted(self._mirrors.get(username, ())):
            if self.providers[home] is None or self.providers[index] is None:
                continue  # that side is down; sync resumes on recovery
            moved += self.link_between(home, index).sync_user(username)
        return moved

    def sync_all(self) -> int:
        return sum(self.sync_user(u) for u in sorted(self._mirrors))

    # ------------------------------------------------------------------
    # failure and journal-replay recovery
    # ------------------------------------------------------------------

    def crash(self, index: int) -> None:
        """Take provider ``index`` down, keeping only what M10 made
        durable: the base snapshot and the raw journal bytes."""
        provider = self.provider(index)
        manager = provider._durability
        if manager is None:
            raise SyncError(
                f"provider {index} has no durability manager; nothing "
                f"would survive a crash")
        self._wreckage[index] = (
            provider,
            copy.deepcopy(manager.base),
            bytes(manager.journal.raw_bytes()))
        self.providers[index] = None

    def recover(self, index: int) -> dict[str, Any]:
        """Journal-replay recovery (M10): rebuild the crashed provider
        from snapshot + journal, swap it into every link, and
        invalidate the links' cursors (the fresh journal identity
        makes them stale anyway — the swap just makes it explicit).
        Returns the replay report."""
        if index not in self._wreckage:
            raise SyncError(f"provider {index} did not crash")
        old, base, journal = self._wreckage.pop(index)
        recovered, report = recover_provider(
            base, journal, config=self._provider_config)
        self.providers[index] = recovered
        for (i, j), link in self._links.items():
            if index in (i, j):
                link.replace_provider(old, recovered)
        return report

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def health_report(self) -> dict[str, Any]:
        """Fleet health rollup (M16): every provider slot and link
        classified ok / degraded / down from existing gauges — see
        :func:`repro.obs.fabric_health` for the rules."""
        from ..obs.fleet import fabric_health
        return fabric_health(self)

    def federation_stats(self) -> dict[str, Any]:
        """Fabric-wide counters: ring shape, per-link engine stats,
        and envelope traffic totals (for ``Metrics.attach``)."""
        links = [link.federation_stats() for __, link in
                 sorted(self._links.items())]
        totals = {"envelopes_sent": 0, "envelopes_deduped": 0,
                  "bytes_moved": 0, "transfers": 0}
        for stats in links:
            for key in totals:
                totals[key] += stats.get(key, 0)
        return {
            "providers": len(self.providers),
            "live": sum(p is not None for p in self.providers),
            "links": len(self._links),
            "mirrored_users": sum(bool(m) for m in self._mirrors.values()),
            "delta_sync": self.federation.delta_sync,
            **totals,
            "per_link": links,
        }
