"""Legacy setup shim.

Environments without the ``wheel`` package cannot do PEP 660 editable
installs; keeping a setup.py lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
