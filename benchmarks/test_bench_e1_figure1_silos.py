"""E1 — Figure 1: today's siloed Web.

Regenerates the costs the figure implies: per-site data re-entry,
duplication of the same user data across sites, item-by-item
migration, and the impossibility of cross-site reads.
"""

import pytest

from repro.baselines import SiloError, SiloedWeb
from repro.workloads import make_social_world

from .conftest import print_table

N_SITES = 4
N_USERS = 15


def build_siloed_world():
    world = make_social_world(n_users=N_USERS, photos_per_user=3, seed=7)
    web = SiloedWeb()
    for i in range(N_SITES):
        web.add_site(f"site-{i}")
    for user in world.users:
        web.join_everywhere(user, world.profiles[user])
        for photo in world.photos[user]:
            web.site("site-0").store(user, photo["filename"],
                                     photo["bytes"])
    return world, web


def test_bench_e1_siloed_web(benchmark):
    world, web = benchmark(build_siloed_world)

    reentry = sum(site.reentry_count for site in web.sites.values())
    fields_per_user = len(world.profiles[world.users[0]])
    duplication = web.duplicated_fields(world.users[0])

    # migration cost: move one user's photos to another silo
    migrated = web.migrate(world.users[0], "site-0", "site-1")

    # cross-site reads are architecturally impossible
    with pytest.raises(SiloError):
        web.cross_site_read("site-1", world.users[0], "site-0",
                            world.photos[world.users[0]][0]["filename"])

    assert reentry == N_SITES * N_USERS * fields_per_user
    assert duplication == N_SITES
    assert migrated == 3

    print_table(
        "E1 / Figure 1: the siloed Web",
        ["metric", "value"],
        [["sites", N_SITES],
         ["users", N_USERS],
         ["profile fields re-entered (total)", reentry],
         ["profile copies per user", duplication],
         ["manual steps to migrate 3 photos", migrated],
         ["cross-site reads possible", "no"]])
