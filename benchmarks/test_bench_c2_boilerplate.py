"""C2 — §3.1: the boilerplate policy is an identity matrix.

For every (owner, requester) pair, may owner-tagged bytes cross the
perimeter toward the requester with no declassifier granted?  The
paper's default says: only on the diagonal.
"""

from repro.labels import Label
from repro.net import ExportViolation
from repro.platform import Provider

from .conftest import print_table

USERS = ["bob", "amy", "carl", "dot"]


def build_matrix():
    provider = Provider()
    for u in USERS:
        provider.signup(u, "pw")
    matrix = {}
    for owner in USERS:
        tag = provider.account(owner).data_tag
        for requester in USERS + [None]:
            try:
                provider.gateway.export_check(Label([tag]), requester)
                matrix[(owner, requester)] = True
            except ExportViolation:
                matrix[(owner, requester)] = False
    return matrix


def test_bench_c2_boilerplate_matrix(benchmark):
    matrix = benchmark(build_matrix)

    for owner in USERS:
        for requester in USERS + [None]:
            expected = owner == requester
            assert matrix[(owner, requester)] == expected, \
                (owner, requester)

    rows = []
    for owner in USERS:
        row = [owner]
        for requester in USERS:
            row.append("ALLOW" if matrix[(owner, requester)] else "deny")
        row.append("ALLOW" if matrix[(owner, None)] else "deny")
        rows.append(row)
    print_table("C2: export matrix (no declassifiers granted)",
                ["owner \\ to"] + USERS + ["anonymous"], rows)
