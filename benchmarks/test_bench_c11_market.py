"""C11 — §3.2: editorial controls discourage anti-social apps.

The same market (20 apps, 30% anti-social with lock-in retention,
2000 users, 50 rounds) with editors on and off; the series is the
anti-social share of users over time.  Illustrative, like C7: it shows
the direction and mechanism of the paper's claim.
"""

from repro.ecosystem import compare_editorial_controls

from .conftest import print_table


def run_market_comparison():
    return compare_editorial_controls(seed=41, n_apps=20,
                                      antisocial_fraction=0.3,
                                      population=2000, steps=50)


def test_bench_c11_editorial_market(benchmark):
    outcomes = benchmark(run_market_comparison)
    with_ed = outcomes["with editors"]
    without = outcomes["without editors"]

    # editors push the share down from its start; no editors, lock-in
    # pushes it up — the §3.2 mechanism in both directions
    assert with_ed.final_antisocial_share < with_ed.share_by_step[0]
    assert without.final_antisocial_share > without.share_by_step[0]
    assert with_ed.final_antisocial_share < without.final_antisocial_share

    print_table(
        "C11: anti-social apps' market share",
        ["configuration", "initial", "final", "flagged apps"],
        [["with editors", f"{with_ed.share_by_step[0]:.0%}",
          f"{with_ed.final_antisocial_share:.0%}",
          sum(1 for a in with_ed.apps if a.flagged)],
         ["without editors", f"{without.share_by_step[0]:.0%}",
          f"{without.final_antisocial_share:.0%}",
          sum(1 for a in without.apps if a.flagged)]])

    stride = max(1, len(with_ed.share_by_step) // 8)
    print_table(
        "C11 series: anti-social share by round",
        ["round", "with editors", "without editors"],
        [[i, f"{with_ed.share_by_step[i]:.0%}",
          f"{without.share_by_step[i]:.0%}"]
         for i in range(0, len(with_ed.share_by_step), stride)])
