"""M13 shared harness: the sharded request plane under load.

Two questions, measured separately because they bound different
things:

* **parity at 1 shard** — a 1-shard :class:`ShardedProvider` on the
  same batched read mix as the unsharded ``ProviderConfig.fast()``
  plane.  One shard short-circuits to the inner provider's
  ``handle_batch`` (the router adds a dict probe per request and
  nothing else), and the differential suite pins the two
  byte-identical — so this ratio is the *entire* price of leaving
  sharding compiled in but switched off, and it must be ~1.0x;
* **scaling across shards** — aggregate throughput of the same
  workload at 1 vs. 4 shards under the fork engine (one child
  process per shard, batch-oriented pipe RPC).  This is the number
  sharding exists for: N GIL-free request planes, one merged audit
  stream.  It is honest only on a multi-core box; on a single core
  the children timeslice one CPU and the harness reports (and
  guards) graceful degradation instead.

The workload is shard-local by construction — every request reads
its own user's data — because that is the case sharding optimizes
(cross-shard federation is ROADMAP item 2, not M13).  Setup (signup,
enable, grant, login) runs **before** the first dispatch so the fork
engine's children inherit all of it through the fork; the posts ride
the first (discarded) warm batch.

Used by both ``test_bench_m13_shards.py`` (assertions + table) and
``record.py`` (BENCH_M13.json + the scaling regression guard), so
the two always measure the same thing.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional

from repro.apps import install_standard_apps
from repro.net import SESSION_COOKIE
from repro.net.http import HttpRequest
from repro.platform import Provider, ProviderConfig, ShardedProvider

#: Parity bound: a 1-shard sharded plane vs. the unsharded fast()
#: plane on the identical batch mix (floor over floor).  The short
#: circuit makes this one counter bump per batch: measured floors on
#: a quiet box are 0.94-1.0x.  The bound is wider than M11/M12's
#: 1.06x same-build allowance because these are two *different*
#: deployments on shared CI hardware — 1.10x still fails on any real
#: per-request router cost (a single extra dict probe per request
#: measures ~1.15x+ at this latency).
M13_MAX_ONE_SHARD_RATIO = 1.10
#: Scaling bound on a real multi-core box (4+ cores, os.fork): 4
#: shards must deliver at least 3x the aggregate throughput of 1.
M13_MIN_SCALING_SPEEDUP = 3.0
#: Cores needed before the 3x guard is meaningful.
M13_SCALING_MIN_CORES = 4
#: Degraded-mode floor everywhere else: 4 forked children
#: timeslicing a single core pay 4 sequential request planes plus
#: pipe serialization per batch, measured at 0.3-1.3x of the 1-shard
#: plane depending on contention.  The floor only catches collapse
#: (a lost child, a serialized engine, per-request pipe chatter),
#: not the timeslicing itself.
M13_MIN_DEGRADED_SPEEDUP = 0.25

N_USERS = 64
BURST_PER_USER = 4


def scaling_engine() -> str:
    """The engine the scaling run uses: fork wherever POSIX allows
    (the only engine that escapes the GIL), threads otherwise."""
    return "fork" if hasattr(os, "fork") else "thread"


def _populate(provider_like: Any, sharded: Optional[ShardedProvider],
              n_users: int) -> list[HttpRequest]:
    """Users, grants, sessions and the steady-state read burst.

    Everything here runs in the parent process — for the fork engine
    that means pre-fork, so every child inherits the accounts and
    sessions without a single pipe message.
    """
    users = [f"user{i}" for i in range(n_users)]
    for u in users:
        provider_like.signup(u, "pw")
        provider_like.enable_app(u, "blog")
        provider_like.grant_builtin_declassifier(
            u, "friends-only", {"friends": []})
    reads: list[HttpRequest] = []
    posts: list[HttpRequest] = []
    for u in users:
        if sharded is not None:
            home = sharded.map.shard_of_user(u)
            token = sharded.shards[home].sessions.login(u, "pw").token
            sharded._token_shard[token] = home
        else:
            token = provider_like.sessions.login(u, "pw").token
        cookies = {SESSION_COOKIE: token}
        posts.append(HttpRequest(method="GET", path="/app/blog/post",
                                 params={"title": f"t-{u}", "body": "b"},
                                 cookies=cookies))
        reads.extend(HttpRequest(method="GET", path="/app/blog/read",
                                 params={"title": f"t-{u}"},
                                 cookies=cookies)
                     for _ in range(BURST_PER_USER))
    warm = provider_like.handle_batch(posts)
    assert all(r.status == 200 for r in warm), "warm posts must land"
    return reads


def build_sharded(n_shards: int, engine: Optional[str] = None,
                  n_users: int = N_USERS
                  ) -> tuple[ShardedProvider, list[HttpRequest]]:
    sp = ShardedProvider(name="m13", n_shards=n_shards, engine=engine)
    install_standard_apps(sp)
    return sp, _populate(sp, sp, n_users)


def build_unsharded(n_users: int = N_USERS
                    ) -> tuple[Provider, list[HttpRequest]]:
    p = Provider(name="m13", config=ProviderConfig.fast())
    install_standard_apps(p)
    return p, _populate(p, None, n_users)


def measure_batch_seconds(provider_like: Any,
                          requests: list[HttpRequest],
                          loops: int = 8, repeat: int = 3) -> float:
    """Best-of seconds per request for the burst via handle_batch."""
    responses = provider_like.handle_batch(requests)  # warm
    assert all(r.status == 200 for r in responses)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(loops):
            provider_like.handle_batch(requests)
        best = min(best, time.perf_counter() - t0)
    return best / (len(requests) * loops)


def run_parity(n_users: int = N_USERS, loops: int = 8,
               repeat: int = 14) -> dict[str, Any]:
    """1-shard sharded plane vs. the unsharded fast() plane.

    The M11/M12 drift-resistant protocol: two builds per mode in
    alternating order (plain, sharded, sharded, plain), then
    interleaved measurement slices; each mode's latency is its floor
    across both builds, so build-to-build layout luck and container
    drift land on both modes alike.
    """
    plain_builds = [build_unsharded(n_users)]
    sharded_builds = [build_sharded(1, n_users=n_users),
                      build_sharded(1, n_users=n_users)]
    plain_builds.append(build_unsharded(n_users))
    plain_s: list[float] = []
    sharded_s: list[float] = []
    for _ in range(repeat):
        for p, reads in plain_builds:
            plain_s.append(measure_batch_seconds(p, reads,
                                                 loops=loops, repeat=1))
        for sp, reads in sharded_builds:
            sharded_s.append(measure_batch_seconds(sp, reads,
                                                   loops=loops, repeat=1))
    floor_plain = min(plain_s)
    floor_sharded = min(sharded_s)
    return {
        "users": n_users,
        "unsharded_us": round(floor_plain * 1e6, 2),
        "one_shard_us": round(floor_sharded * 1e6, 2),
        "one_shard_ratio": round(floor_sharded / floor_plain, 3),
        "unsharded_rps": round(1.0 / floor_plain, 1),
        "one_shard_rps": round(1.0 / floor_sharded, 1),
    }


def run_scaling(shard_counts: tuple[int, ...] = (1, 2, 4),
                n_users: int = N_USERS, loops: int = 8,
                repeat: int = 3) -> dict[str, Any]:
    """Aggregate throughput of the same burst at each shard count."""
    engine = scaling_engine()
    tiers: dict[str, Any] = {}
    per_request: dict[int, float] = {}
    for n in shard_counts:
        sp, reads = build_sharded(n, engine=engine if n > 1 else None,
                                  n_users=n_users)
        try:
            secs = measure_batch_seconds(sp, reads, loops=loops,
                                         repeat=repeat)
        finally:
            sp.shutdown()
        per_request[n] = secs
        tiers[f"shards_{n}"] = {
            "latency_us": round(secs * 1e6, 2),
            "throughput_rps": round(1.0 / secs, 1),
            "engine": sp.engine_name,
        }
    hi = max(shard_counts)
    speedup = per_request[1] / per_request[hi]
    return {
        "users": n_users, "burst": n_users * BURST_PER_USER,
        "engine": engine, "cores": os.cpu_count() or 1,
        "tiers": tiers,
        "speedup_max_vs_1": round(speedup, 2),
        "max_shards": hi,
    }


def scaling_guard(scaling: dict[str, Any]) -> dict[str, Any]:
    """The conditional regression verdict both consumers share.

    On a 4+-core POSIX box the 3x bar applies; elsewhere (this
    includes single-core CI runners and platforms without os.fork)
    only the graceful-degradation floor does, and the payload says
    which bar was in force so the recorded trajectory is comparable.
    """
    multicore = (scaling["cores"] >= M13_SCALING_MIN_CORES
                 and scaling["engine"] == "fork")
    bound = M13_MIN_SCALING_SPEEDUP if multicore \
        else M13_MIN_DEGRADED_SPEEDUP
    return {
        "speedup_max_vs_1": scaling["speedup_max_vs_1"],
        "min_speedup": bound,
        "multicore_bar": multicore,
        "regression": scaling["speedup_max_vs_1"] < bound,
    }
