"""C6 — §3.3: cross-provider mirroring via sync declassifiers.

Two providers, a linked account, edits landing on either side.  The
table reports divergence before/after each sync round, transfer
counts, and verifies the mirrored data is still protected on the
destination provider.
"""

from repro.federation import ProviderLink, converged
from repro.fs import FsView
from repro.labels import SecrecyViolation
from repro.platform import Provider

from .conftest import print_table

N_FILES = 6


def run_federation_rounds():
    a = Provider(name="w5-alpha")
    b = Provider(name="w5-beta")
    for p in (a, b):
        p.signup("bob", "pw")
    link = ProviderLink(a, b)
    link.link_account("bob")
    link.grant_sync("bob")

    rounds = []
    # round 1: initial content on A
    for i in range(N_FILES):
        a.store_user_data("bob", f"f{i}", f"v1-{i}")
    moved1 = link.sync_user("bob")
    rounds.append(("initial A→B", moved1, converged(link, "bob")))

    # round 2: edits on B propagate back
    agent = b._user_agent(b.account("bob"))
    FsView(b.fs, agent).write("/users/bob/f0", "v2-edited-on-B")
    b.kernel.exit(agent)
    moved2 = link.sync_user("bob")
    rounds.append(("edit B→A", moved2, converged(link, "bob")))

    # round 3: steady state moves nothing
    moved3 = link.sync_user("bob")
    rounds.append(("steady state", moved3, converged(link, "bob")))

    # policy still enforced on B for the mirrored data
    snoop = b.kernel.spawn_trusted("eve-on-beta")
    try:
        FsView(b.fs, snoop).read("/users/bob/f1")
        protected = False
    except SecrecyViolation:
        protected = True
    return rounds, protected


def test_bench_c6_federation(benchmark):
    rounds, protected = benchmark(run_federation_rounds)

    assert rounds[0][1] == N_FILES and rounds[0][2]
    assert rounds[1][1] == 1 and rounds[1][2]
    assert rounds[2][1] == 0 and rounds[2][2]
    assert protected

    print_table(
        "C6: cross-provider sync rounds (linked account)",
        ["round", "files transferred", "converged after"],
        [[name, moved, "yes" if conv else "no"]
         for name, moved, conv in rounds])
    print_table(
        "C6: policy on the mirror",
        ["check", "result"],
        [["stranger on B reads bob's mirrored file",
          "denied" if protected else "LEAKED"]])
