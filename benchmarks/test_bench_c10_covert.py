"""C10 — §3.5: the SQL covert channel, measured and closed.

A colluding pair pushes bits through the shared store under fail-stop
vs label-filtered semantics (the DESIGN.md §6 storage ablation), plus
the residual timing channel of filtered full scans and its
index-restriction mitigation.
"""

import random

from repro.covert import FAILSTOP, FILTERED, StorageChannel, timing_probe

from .conftest import print_table

N_BITS = 64


def run_covert_experiments():
    rng = random.Random(9)
    bits = [rng.randint(0, 1) for __ in range(N_BITS)]

    reports = {}
    for semantics in (FAILSTOP, FILTERED):
        reports[semantics] = StorageChannel().transmit(bits, semantics)

    timing = {
        "0 hidden rows": timing_probe(invisible_rows=0),
        "100 hidden rows": timing_probe(invisible_rows=100),
        "0 hidden, padded": timing_probe(invisible_rows=0,
                                         pad_scan_to=500),
        "100 hidden, padded": timing_probe(invisible_rows=100,
                                           pad_scan_to=500),
    }
    return reports, timing


def test_bench_c10_covert_channels(benchmark):
    reports, timing = benchmark(run_covert_experiments)

    failstop = reports[FAILSTOP]
    filtered = reports[FILTERED]
    assert failstop.capacity_bits_per_query == 1.0
    assert set(filtered.received) == {0}  # constant output: zero info

    print_table(
        f"C10a: storage channel over {N_BITS} bits",
        ["semantics", "bits decoded correctly", "channel capacity"],
        [["fail-stop (rejected design)",
          N_BITS - failstop.errors, "1.0 bit/query"],
         ["label-filtered (repro.db)",
          "receiver output constant", "0 bits/query"]])

    t0 = timing["0 hidden rows"]
    t100 = timing["100 hidden rows"]
    p0 = timing["0 hidden, padded"]
    p100 = timing["100 hidden, padded"]
    assert t100["full_scan_rows_touched"] > t0["full_scan_rows_touched"]
    assert t100["indexed_rows_touched"] == t0["indexed_rows_touched"]
    # padding closes the full-scan channel completely
    assert (p100["full_scan_rows_touched"]
            == p0["full_scan_rows_touched"] == 500)

    print_table(
        "C10b: residual timing channel (rows touched by a clean query)",
        ["configuration", "full scan", "indexed scan"],
        [["no hidden rows", t0["full_scan_rows_touched"],
          t0["indexed_rows_touched"]],
         ["100 hidden rows", t100["full_scan_rows_touched"],
          t100["indexed_rows_touched"]],
         ["no hidden rows, pad=500", p0["full_scan_rows_touched"],
          p0["indexed_rows_touched"]],
         ["100 hidden rows, pad=500", p100["full_scan_rows_touched"],
          p100["indexed_rows_touched"]]])
