"""A1 — ablation (DESIGN.md §6): explicit labels vs Asbestos-style
floating labels.

Random gossip among N processes, a fraction of which start tainted.
Under Flume-style explicit labels, unsafe sends are refused and clean
processes stay clean (and exportable).  Under floating labels every
send succeeds — and taint creeps until almost nothing can talk to the
outside world.  The table reports, after the same message schedule:
how many processes remain clean, the mean label size, and how many
sends were refused.
"""

import random

from repro.kernel import Kernel, RECV, SEND
from repro.labels import Label, LabelError

from .conftest import print_table

N_PROCS = 20
N_TAINTED = 3
N_MESSAGES = 400


def run_gossip(floating: bool):
    rng = random.Random(99)
    kernel = Kernel(floating_labels=floating)
    root = kernel.spawn_trusted("root")
    tags = [kernel.create_tag(root, purpose=f"secret{i}")
            for i in range(N_TAINTED)]
    procs = []
    for i in range(N_PROCS):
        label = Label([tags[i]]) if i < N_TAINTED else Label.EMPTY
        procs.append(kernel.spawn_trusted(f"p{i}", slabel=label))
    ports = [(kernel.create_endpoint(p, direction=SEND),
              kernel.create_endpoint(p, direction=RECV)) for p in procs]

    refused = 0
    for __ in range(N_MESSAGES):
        a, b = rng.sample(range(N_PROCS), 2)
        try:
            kernel.send(procs[a], ports[a][0], ports[b][1], "gossip")
            kernel.receive(procs[b])
        except LabelError:
            refused += 1
    clean = sum(1 for p in procs if p.slabel.is_empty())
    mean_label = sum(len(p.slabel) for p in procs) / N_PROCS
    return clean, mean_label, refused


def run_both():
    return {"explicit (Flume/W5)": run_gossip(False),
            "floating (Asbestos-style)": run_gossip(True)}


def test_bench_a1_floating_labels(benchmark):
    results = benchmark(run_both)

    explicit = results["explicit (Flume/W5)"]
    floating = results["floating (Asbestos-style)"]

    # explicit: taint never spreads — the tainted stay tainted, the
    # clean stay clean, unsafe sends show up as refusals
    assert explicit[0] == N_PROCS - N_TAINTED
    assert explicit[2] > 0
    # floating: everything delivered, but the world drowns in taint
    assert floating[2] == 0
    assert floating[0] < N_TAINTED + 2     # (almost) nobody stays clean
    assert floating[1] > explicit[1]

    print_table(
        f"A1: {N_MESSAGES} random messages, {N_TAINTED}/{N_PROCS} "
        f"initially tainted",
        ["mode", "clean processes left", "mean label size",
         "sends refused"],
        [[name, clean, mean, refused]
         for name, (clean, mean, refused) in results.items()])
