"""M4 — mechanism cost: IPC round trips under the reference monitor.

Send+receive throughput as the number of tags on the channel grows,
plus the DESIGN.md §6 endpoint-discipline ablation: checked endpoint
send vs a raw dict append (what an unmonitored system would do).

``cached=False`` variants run the same workload on a kernel whose
``FlowCache`` is a pass-through, giving the before/after pair
EXPERIMENTS.md records; the speedup test asserts the ≥2× bar on the
per-send flow check.
"""

import time

import pytest

from repro.kernel import Kernel, RECV, SEND
from repro.labels import FlowCache, Label

from .conftest import print_table


def _pair(n_tags, cached=True):
    kernel = Kernel(flow_cache=FlowCache(enabled=cached))
    root = kernel.spawn_trusted("root")
    tags = [kernel.create_tag(root) for __ in range(n_tags)]
    label = Label(tags)
    a = kernel.spawn_trusted("a", slabel=label)
    b = kernel.spawn_trusted("b", slabel=label)
    out = kernel.create_endpoint(a, direction=SEND)
    inbox = kernel.create_endpoint(b, direction=RECV)
    return kernel, a, b, out, inbox


@pytest.mark.parametrize("cached", [True, False],
                         ids=["cached", "uncached"])
@pytest.mark.parametrize("n_tags", [0, 8, 64])
def test_bench_m4_send_receive(benchmark, n_tags, cached):
    kernel, a, b, out, inbox = _pair(n_tags, cached=cached)

    def roundtrip():
        kernel.send(a, out, inbox, "payload")
        return kernel.receive(b)

    msg = benchmark(roundtrip)
    assert msg.payload == "payload"


def test_bench_m4_flow_check_speedup():
    """Acceptance bar: the per-send flow check itself (the part the
    cache accelerates; mailbox bookkeeping is common to both) is ≥2×
    faster on a repeated 64-tag channel."""
    n = 20_000
    times = {}
    for cached in (True, False):
        kernel, a, b, out, inbox = _pair(64, cached=cached)
        ep_args = (out.slabel, out.ilabel, inbox.slabel, inbox.ilabel)
        kernel.flow_cache.check_flow(*ep_args)  # warm
        t0 = time.perf_counter()
        for _ in range(n):
            kernel.flow_cache.check_flow(*ep_args)
        times[cached] = time.perf_counter() - t0

    speedup = times[False] / times[True]
    print_table("M4: repeated 64-tag flow check, cached vs uncached",
                ["variant", "ops/s"],
                [["uncached", n / times[False]], ["cached", n / times[True]],
                 ["speedup", speedup]])
    assert speedup >= 2.0, f"cache speedup only {speedup:.2f}x"


def test_bench_m4_unmonitored_baseline(benchmark):
    """The ablation lower bound: queue append + pop, no checks."""
    from collections import deque
    q = deque()

    def bare_roundtrip():
        q.append("payload")
        return q.popleft()

    assert benchmark(bare_roundtrip) == "payload"


def test_bench_m4_audit_volume():
    """Not a timing bench: confirms the audit trail scales with sends
    (every decision is recorded, M4's hidden cost)."""
    kernel, a, b, out, inbox = _pair(4)
    before = len(kernel.audit)
    for __ in range(100):
        kernel.send(a, out, inbox, "x")
        kernel.receive(b)
    grew = len(kernel.audit) - before
    assert grew == 200
