"""M4 — mechanism cost: IPC round trips under the reference monitor.

Send+receive throughput as the number of tags on the channel grows,
plus the DESIGN.md §6 endpoint-discipline ablation: checked endpoint
send vs a raw dict append (what an unmonitored system would do).
"""

import pytest

from repro.kernel import Kernel, RECV, SEND
from repro.labels import Label


def _pair(n_tags):
    kernel = Kernel()
    root = kernel.spawn_trusted("root")
    tags = [kernel.create_tag(root) for __ in range(n_tags)]
    label = Label(tags)
    a = kernel.spawn_trusted("a", slabel=label)
    b = kernel.spawn_trusted("b", slabel=label)
    out = kernel.create_endpoint(a, direction=SEND)
    inbox = kernel.create_endpoint(b, direction=RECV)
    return kernel, a, b, out, inbox


@pytest.mark.parametrize("n_tags", [0, 8, 64])
def test_bench_m4_send_receive(benchmark, n_tags):
    kernel, a, b, out, inbox = _pair(n_tags)

    def roundtrip():
        kernel.send(a, out, inbox, "payload")
        return kernel.receive(b)

    msg = benchmark(roundtrip)
    assert msg.payload == "payload"


def test_bench_m4_unmonitored_baseline(benchmark):
    """The ablation lower bound: queue append + pop, no checks."""
    from collections import deque
    q = deque()

    def bare_roundtrip():
        q.append("payload")
        return q.popleft()

    assert benchmark(bare_roundtrip) == "payload"


def test_bench_m4_audit_volume():
    """Not a timing bench: confirms the audit trail scales with sends
    (every decision is recorded, M4's hidden cost)."""
    kernel, a, b, out, inbox = _pair(4)
    before = len(kernel.audit)
    for __ in range(100):
        kernel.send(a, out, inbox, "x")
        kernel.receive(b)
    grew = len(kernel.audit) - before
    assert grew == 200
