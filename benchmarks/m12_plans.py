"""M12 shared harness: compiled request plans on the M8 mix.

Two questions, measured separately because they bound different
things:

* **end to end** — the same fully labeled blog read as M8
  (authenticate → pool checkout → labeled row read → export check →
  egress), planned vs. unplanned.  Plans only replace the *pure
  recomputation* in that pipeline; the spawn, the label change, the
  exit, five audit records and the charges are mandated observables
  (the differential suite pins them byte-identical), so the
  end-to-end win is the interpretation overhead and nothing more;
* **the cached read** — the compiled decision path itself on a plan
  hit: one ``PlanCache.lookup`` (dict probe + three epoch compares +
  the live account-policy check), the finished pool key, the
  state-keyed partition read verdicts for the blog table, and the
  precomputed egress verdict.  This is the per-request decision cost
  the plan reduces the control plane to, and the number the sub-10µs
  target governs.  It is *not* an end-to-end latency — the labeled
  read's mandated observables put the request floor well above it by
  design.

The end-to-end comparison runs under the M11 drift-resistant
protocol: two builds per mode in alternating order (off, on, on,
off), warmup loops discarded, then interleaved ~10ms slices with
per-mode floors, so container drift lands on both modes alike.  The
two unplanned builds bound the noise floor exactly as M11's two
``tracing=False`` builds do.

Used by both ``test_bench_m12_plans.py`` (assertions + table) and
``record.py`` (BENCH_M12.json + the 3x regression guard), so the two
always measure the same thing.

Plain imports only: ``record.py`` runs as a script, so this module
must work without the package context (hence the dual import of the
M8 measurement loop).
"""

from __future__ import annotations

import time
from typing import Any

try:  # package context (pytest)
    from .m8_scaling import measure_request_seconds
except ImportError:  # script context (record.py)
    from m8_scaling import measure_request_seconds

from repro import W5System
from repro.net import HttpRequest
from repro.platform import ProviderConfig

#: The cached-read budget: the compiled decision path on a plan hit.
#: Measured cost is ~1-3us — a dict probe, three int compares, the
#: account-policy check, one state-keyed verdict-table read over the
#: blog table's partitions and two attribute loads for egress — so
#: 10us leaves 3x+ headroom while still catching a decision path that
#: quietly starts re-deriving caps or authority per request (the
#: interpreted derivation alone measures 15us+).
M12_MAX_CACHED_READ_US = 10.0
#: Planned-over-unplanned budget on the M8 mix (floor over floor).
#: Plans must *win*: measured ~0.78x (the ~15us of per-request
#: interpretation they remove from a ~70us read).  0.95 leaves room
#: for build-to-build layout luck while failing if planned dispatch
#: ever stops paying for itself.
M12_MAX_PLANNED_RATIO = 0.95
#: Two identical unplanned builds must reproduce each other's floor —
#: same noise bound as M11, same reasoning (incl. the post-M14
#: recalibration: fixed layout deltas over a squeezed floor).
M12_MAX_UNPLANNED_NOISE = 1.09


def build_deployment(n_users: int, plans: bool) -> tuple[W5System, Any]:
    """The M8 deployment, configured through the M12 config API.

    Identical to the M8 builder except the mode switch is
    ``ProviderConfig.fast()`` (request plans on) vs. the stock
    ``ProviderConfig()`` (everything else on, plans off) — so the
    measured delta is planned dispatch alone.
    """
    config = ProviderConfig.fast() if plans else ProviderConfig()
    w5 = W5System(name=f"m12-{'planned' if plans else 'unplanned'}",
                  config=config, audit_max_events=20_000)
    driver = w5.add_user("user0", apps=("blog",))
    provider = w5.provider
    for i in range(1, n_users):
        name = f"user{i}"
        provider.signup(name, "pw")
        provider.enable_app(name, "blog")
        provider.grant_builtin_declassifier(
            name, "friends-only", {"friends": []})
    driver.get("/app/blog/post", title="t0", body="hello world")
    resp = driver.get("/app/blog/read", title="t0")
    assert resp.ok and resp.body["body"] == "hello world"
    return w5, driver


class _SubjectState:
    """A label-state stand-in for ``RequestPlan.read_verdicts``."""

    __slots__ = ("slabel", "ilabel", "caps")

    def __init__(self, state: tuple) -> None:
        self.slabel, self.ilabel, self.caps = state


def measure_cached_read_seconds(w5: W5System, n: int = 20_000,
                                repeat: int = 5) -> float:
    """Seconds per compiled decision path on a plan hit.

    Replays exactly the plan reads the planned dispatch loop performs
    per steady-state request — lookup, pool key, the partition
    verdicts for the label state a real tainted read runs in (captured
    from the warmed plan, so it is the state requests actually hit),
    and the precomputed egress verdict — without the mandated
    spawn/label-change/exit observables around them.
    """
    provider = w5.provider
    plans = provider.plans
    declass = provider.declass
    plan = plans.lookup("blog", "user0")
    # the warmed plan holds the tainted-read label state in its dict
    # verdict table, or in the dense slot rows when the M14
    # verdict_slots flag routes the scan through read_verdict_row
    states = plan._verdicts or plan._slot_rows if plan is not None else None
    assert states, "warm the plan first"
    subject = _SubjectState(next(iter(states)))
    pkeys = list(provider.db._tables["blog_posts"].partitions)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(n):
            plan = plans.lookup("blog", "user0")
            key = plan.pool_key
            verdicts = plan.read_verdicts(subject, pkeys)
            exportable = (plan.authority is not None
                          and plan.auth_epoch == declass.authority_epoch)
        best = min(best, time.perf_counter() - t0)
    assert key[0] == "app:blog" and exportable and verdicts
    return best / n


def measure_batch_seconds(w5: W5System, burst: int = 50,
                          loops: int = 40, repeat: int = 3) -> float:
    """Seconds per request through ``handle_batch`` (shared lookups)."""
    provider = w5.provider
    session = provider.sessions.login("user0", "pw").token
    requests = [HttpRequest(method="GET", path="/app/blog/read",
                            params={"title": "t0"},
                            cookies={"w5_session": session})
                for _ in range(burst)]
    provider.handle_batch(requests)  # warm
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(loops):
            provider.handle_batch(requests)
        best = min(best, time.perf_counter() - t0)
    return best / (burst * loops)


def run_comparison(n_users: int = 100, n: int = 150,
                   reps: int = 20) -> dict[str, Any]:
    """The M12 headline: planned vs. unplanned cost on the M8 mix.

    The M11 protocol verbatim (see :mod:`m11_tracing` for the full
    rationale): four deployments built up front in alternating order
    (unplanned, planned, planned, unplanned), discarded warmups, then
    ``reps`` rounds of interleaved ~10ms slices; each mode's latency
    is its minimum slice across both builds, and the two unplanned
    builds' floors bound the noise.
    """
    w5_off, drv_off = build_deployment(n_users, plans=False)
    w5_on, drv_on = build_deployment(n_users, plans=True)
    w5_on2, drv_on2 = build_deployment(n_users, plans=True)
    w5_off2, drv_off2 = build_deployment(n_users, plans=False)
    off_drivers = (drv_off, drv_off2)
    on_drivers = (drv_on, drv_on2)
    for drv in off_drivers + on_drivers:
        measure_request_seconds(drv, n=n, repeat=2)
    off_by_build: tuple[list[float], list[float]] = ([], [])
    on: list[float] = []
    for _ in range(reps):
        for slices, drv in zip(off_by_build, off_drivers):
            slices.append(measure_request_seconds(drv, n=n, repeat=1))
        for drv in on_drivers:
            on.append(measure_request_seconds(drv, n=n, repeat=1))
    floor_a = min(off_by_build[0])
    floor_b = min(off_by_build[1])
    noise = max(floor_a, floor_b) / min(floor_a, floor_b)
    off = sorted(off_by_build[0] + off_by_build[1])
    on.sort()

    cached = measure_cached_read_seconds(w5_on)
    batch = measure_batch_seconds(w5_on)
    provider = w5_on.provider
    unplanned: dict[str, Any] = {
        "users": n_users, "request_plans": False,
        "latency_us": round(off[0] * 1e6, 2),
        "best_slices_us": [round(s * 1e6, 2) for s in off[:4]],
        "throughput_rps": round(1.0 / off[0], 1),
    }
    planned: dict[str, Any] = {
        "users": n_users, "request_plans": True,
        "latency_us": round(on[0] * 1e6, 2),
        "best_slices_us": [round(s * 1e6, 2) for s in on[:4]],
        "throughput_rps": round(1.0 / on[0], 1),
        "batch_latency_us": round(batch * 1e6, 2),
        "plans": provider.plans.stats(),
    }
    interp_us = max(off[0] - on[0], 0.0) * 1e6
    cached_us = cached * 1e6
    return {
        "unplanned": unplanned,
        "planned": planned,
        "cached_read_us": round(cached_us, 3),
        "interpretation_removed_us": round(interp_us, 2),
        "decision_speedup": round(interp_us / cached_us, 2)
        if cached_us else float("inf"),
        "unplanned_noise_ratio": round(noise, 4),
        "planned_ratio": round(on[0] / off[0], 4),
        "max_cached_read_us": M12_MAX_CACHED_READ_US,
        "max_planned_ratio": M12_MAX_PLANNED_RATIO,
        "max_unplanned_noise": M12_MAX_UNPLANNED_NOISE,
    }
