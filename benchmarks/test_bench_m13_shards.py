"""M13 — the sharded request plane: parity off, scaling on.

The sharding claim, as assertions on the batched shard-local read
mix:

* **parity** — a 1-shard ``ShardedProvider`` runs the identical
  workload at ~1.0x the unsharded ``fast()`` plane (the 1-shard path
  short-circuits to the inner provider, so the compiled-in router
  costs a dict probe and nothing else; the differential suite pins
  the two byte-identical);
* **scaling** — on a 4+-core POSIX box the fork engine must turn 4
  shards into at least 3x aggregate throughput; on smaller boxes
  (including single-core CI runners) the guard degrades to the
  graceful floor — sharding may cost, but never collapse — and the
  printed table says which bar was in force;
* the fan-out is real: at 4 shards every shard's child serves a
  share of the burst.
"""

import pytest

from .conftest import print_table
from .m13_shards import (M13_MAX_ONE_SHARD_RATIO, run_parity, run_scaling,
                         scaling_guard)


@pytest.fixture(scope="module")
def parity():
    return run_parity()


@pytest.fixture(scope="module")
def scaling():
    result = run_scaling()
    guard = scaling_guard(result)
    rows = [[name.replace("shards_", "") + " shard(s)",
             tier["engine"], tier["latency_us"], tier["throughput_rps"]]
            for name, tier in sorted(result["tiers"].items())]
    rows.append([f"speedup {result['max_shards']}v1",
                 f"{result['cores']} core(s)",
                 f"{result['speedup_max_vs_1']}x",
                 "3x bar" if guard["multicore_bar"] else "degraded bar"])
    print_table(
        f"M13 shard scaling ({result['users']} users, "
        f"{result['burst']}-request bursts)",
        ["shards", "engine", "latency µs", "throughput rps"], rows)
    return result


def test_bench_m13_one_shard_matches_unsharded(parity):
    ratio = parity["one_shard_ratio"]
    print_table(
        f"M13 parity ({parity['users']} users)",
        ["plane", "latency µs", "throughput rps", "ratio"],
        [["unsharded fast()", parity["unsharded_us"],
          parity["unsharded_rps"], "1.0x"],
         ["1-shard sharded", parity["one_shard_us"],
          parity["one_shard_rps"], f"{ratio}x"]])
    assert ratio < M13_MAX_ONE_SHARD_RATIO, (
        f"a 1-shard sharded plane runs at {ratio}x the unsharded plane "
        f"(budget {M13_MAX_ONE_SHARD_RATIO}x): the router stopped "
        f"short-circuiting")


def test_bench_m13_scaling_meets_its_bar(scaling):
    guard = scaling_guard(scaling)
    assert not guard["regression"], (
        f"4-shard aggregate throughput is {guard['speedup_max_vs_1']}x "
        f"the 1-shard plane (bar: {guard['min_speedup']}x, "
        f"{'multicore' if guard['multicore_bar'] else 'degraded'})")


def test_bench_m13_every_shard_serves_the_burst():
    from .m13_shards import build_sharded, scaling_engine
    sp, reads = build_sharded(4, engine=scaling_engine(), n_users=16)
    try:
        sp.handle_batch(reads)
        assert all(count > 0 for count in sp.routed), sp.routed
    finally:
        sp.shutdown()
