"""Shared helpers for the experiment benches.

Every bench regenerates one experiment from DESIGN.md §4: it builds
the workload, measures the interesting operation with
pytest-benchmark, asserts the *shape* the paper claims (who wins, by
roughly what factor), and prints the table EXPERIMENTS.md records.

Run them all with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Any, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> None:
    """Print an aligned results table (captured unless -s is given)."""
    widths = [len(h) for h in headers]
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
