"""M10 — incremental durability: O(dirty) snapshots, journaled replay.

The tentpole claim: with a write-ahead journal, durability costs
O(dirty state) per snapshot instead of O(total state), and recovery
(base + replay) reproduces exactly what a full restore would.  We
build 100- and 1,000-user deployments, dirty 1% of accounts, and
assert the shapes:

* the incremental snapshot beats the full snapshot decisively at
  1,000 users (>= 10x — measured ~50x), and the gap *widens* with
  deployment size (full is O(users), the delta is O(dirty));
* the delta artifact is a small fraction of the full snapshot bytes;
* journaling costs < 1.5x mutation throughput on the representative
  write mix (file write + profile update + request-plane db write);
* replay actually replays: the recovered provider serves the
  post-checkpoint writes (byte-for-byte equivalence is proven in
  ``tests/platform/test_journal_replay.py``).
"""

import pytest

from .conftest import print_table
from .m10_journal import mutation_overhead, run_tier

USER_TIERS = (100, 1_000)
DIRTY_FRAC = 0.01


@pytest.fixture(scope="module")
def tiers():
    results = {n: run_tier(n, dirty_frac=DIRTY_FRAC) for n in USER_TIERS}
    print_table(
        "M10 durability (1% dirty accounts)",
        ["users", "full ms", "incr ms", "speedup", "delta/full bytes",
         "recover ms", "replayed"],
        [[n, t["full_ms"], t["incremental_ms"], t["snapshot_speedup"],
          f"{t['delta_bytes']}/{t['full_bytes']}", t["recover_ms"],
          t["records_replayed"]]
         for n, t in results.items()])
    return results


@pytest.fixture(scope="module")
def overhead():
    result = mutation_overhead()
    print_table(
        "M10 mutation throughput (journaled vs no journal)",
        ["workload", "journaled µs", "naive µs", "overhead"],
        [["mix", result["journaled_mix_us"], result["naive_mix_us"],
          f"{result['mix_overhead']}x"],
         ["direct", result["journaled_direct_us"],
          result["naive_direct_us"],
          f"{result['direct_overhead']}x"]])
    return result


def test_bench_m10_incremental_snapshot_wins_big(tiers):
    speedup = tiers[1_000]["snapshot_speedup"]
    assert speedup >= 10.0, (
        f"incremental snapshot only {speedup:.1f}x faster than full "
        f"at 1,000 users / 1% dirty (need >= 10x)")


def test_bench_m10_gap_widens_with_deployment_size(tiers):
    assert tiers[1_000]["snapshot_speedup"] > tiers[100]["snapshot_speedup"]


def test_bench_m10_delta_is_small(tiers):
    t = tiers[1_000]
    assert t["delta_bytes"] * 10 < t["full_bytes"], (
        f"delta {t['delta_bytes']}B not small vs full {t['full_bytes']}B")


def test_bench_m10_journal_overhead_is_modest(overhead):
    assert overhead["mix_overhead"] < 1.5, (
        f"journaling costs {overhead['mix_overhead']}x on the write mix "
        f"(need < 1.5x)")
    assert overhead["direct_overhead"] < 2.0, (
        f"journaling costs {overhead['direct_overhead']}x even on bare "
        f"direct-API mutations (need < 2x)")


def test_bench_m10_replay_really_replays(tiers):
    t = tiers[1_000]
    assert t["records_replayed"] == 2 * t["dirty"]  # profile + file each
    assert t["journal_stats"]["torn_truncations"] == 0


def test_bench_m10_snapshot_latency(benchmark):
    """pytest-benchmark point for the 1,000-user incremental snapshot."""
    from repro.platform import snapshot_provider
    from .m10_journal import build_provider
    p = build_provider(1_000, incremental=True)
    p._durability.checkpoint()
    p.set_profile("user00042", mood="benchmarked")
    snap = benchmark(snapshot_provider, p, incremental=True)
    assert snap["kind"] == "delta"
