"""M14 shared harness: the squeezed mandated pipeline vs. itself.

M12 removed the *pure recomputation* from the labeled read; what is
left is the mandated pipeline — the spawn, the label change, the
partition scan, the charges, the exit and the five audit records the
differential suite pins byte-identical.  M14 attacks the constant
factor of exactly those observables without changing a single byte of
them:

* **lazy audit** — records carry an interned template + args tuple
  and render on first access, so the steady state (nobody reads the
  ring) skips one string format per record;
* **compiled label transitions** — ``Kernel.change_label`` memoizes
  the legality of interned ``(from, to, caps)`` transitions behind the
  flow-cache generation, so the two label changes per tainted read
  cost a dict probe each;
* **batched charges** — the scan issues one ``charge_many`` instead
  of a per-partition ``charge`` loop, with one usage lookup and
  slot-backed counters;
* **verdict slots** — the planned scan indexes a dense per-state list
  by small-int partition slot instead of probing a dict per partition.

Both sides of the comparison run with request plans *on*
(``ProviderConfig.fast()`` vs. the same config with the four M14
flags off), so the measured delta is the pipeline squeeze alone — not
a replay of the M12 win.

The comparison runs under the M11 drift-resistant protocol: two
builds per mode in alternating order (naive, fast, fast, naive),
warmup loops discarded, then interleaved ~10ms slices with per-mode
floors, so container drift lands on both modes alike.  The two naive
builds bound the noise floor exactly as M11's two ``tracing=False``
builds do.

Used by both ``test_bench_m14_pipeline.py`` (assertions + table) and
``record.py`` (BENCH_M14.json + the 1.2x regression guard), so the
two always measure the same thing.

Plain imports only: ``record.py`` runs as a script, so this module
must work without the package context (hence the dual import of the
M8 measurement loop).
"""

from __future__ import annotations

from typing import Any, Optional

try:  # package context (pytest)
    from .m8_scaling import measure_request_seconds
except ImportError:  # script context (record.py)
    from m8_scaling import measure_request_seconds

from repro import W5System
from repro.platform import ProviderConfig

#: The four M14 fast-path switches, each independently revertible to
#: its naive twin through :class:`ProviderConfig`.
M14_FLAGS = ("lazy_audit", "compiled_transitions", "batched_charges",
             "verdict_slots")
M14_NAIVE = {flag: False for flag in M14_FLAGS}

#: The end-to-end bar: the fast pipeline must beat the naive pipeline
#: (floor over floor, M11 protocol) by at least 1.2x on the labeled
#: tainted read.  Measured ~1.3x on the reference box — ~50us of
#: mandated pipeline down to the high 30s — so 1.2 leaves headroom
#: for build-to-build layout luck while failing if any of the four
#: shortcuts quietly stops being a shortcut.
M14_MIN_SPEEDUP = 1.2
#: Two identical naive builds must reproduce each other's floor —
#: same noise bound as M11/M12, same reasoning (fixed layout deltas
#: are a larger ratio of the squeezed floor, and the once-through CI
#: suite runs in a heap fragmented by the earlier suites).
M14_MAX_NAIVE_NOISE = 1.09


def pipeline_config(fast: bool, only: Optional[str] = None) -> ProviderConfig:
    """The fast plane with the M14 pipeline on (``fast=True``) or
    reverted to the naive twins (``fast=False``).

    ``only`` re-enables a single M14 flag on the naive base — the
    per-stage attribution knob :func:`run_stage_breakdown` uses.
    """
    if fast:
        return ProviderConfig.fast()
    overrides = dict(M14_NAIVE)
    if only is not None:
        overrides[only] = True
    return ProviderConfig.fast().replace(**overrides)


def build_deployment(n_users: int, fast: bool,
                     only: Optional[str] = None) -> tuple[W5System, Any]:
    """The M8 deployment with plans on either way; the mode switch is
    the four M14 pipeline flags, so the measured delta is the squeeze
    of the mandated observables alone."""
    w5 = W5System(name=f"m14-{'fast' if fast else 'naive'}",
                  config=pipeline_config(fast, only=only),
                  audit_max_events=20_000)
    driver = w5.add_user("user0", apps=("blog",))
    provider = w5.provider
    for i in range(1, n_users):
        name = f"user{i}"
        provider.signup(name, "pw")
        provider.enable_app(name, "blog")
        provider.grant_builtin_declassifier(
            name, "friends-only", {"friends": []})
    driver.get("/app/blog/post", title="t0", body="hello world")
    resp = driver.get("/app/blog/read", title="t0")
    assert resp.ok and resp.body["body"] == "hello world"
    return w5, driver


def run_comparison(n_users: int = 100, n: int = 150,
                   reps: int = 20) -> dict[str, Any]:
    """The M14 headline: fast vs. naive mandated pipeline, M8 mix.

    The M11 protocol verbatim (see :mod:`m11_tracing` for the full
    rationale): four deployments built up front in alternating order
    (naive, fast, fast, naive), discarded warmups, then ``reps``
    rounds of interleaved ~10ms slices; each mode's latency is its
    minimum slice across both builds, and the two naive builds'
    floors bound the noise.
    """
    w5_off, drv_off = build_deployment(n_users, fast=False)
    w5_on, drv_on = build_deployment(n_users, fast=True)
    w5_on2, drv_on2 = build_deployment(n_users, fast=True)
    w5_off2, drv_off2 = build_deployment(n_users, fast=False)
    off_drivers = (drv_off, drv_off2)
    on_drivers = (drv_on, drv_on2)
    for drv in off_drivers + on_drivers:
        measure_request_seconds(drv, n=n, repeat=2)
    off_by_build: tuple[list[float], list[float]] = ([], [])
    on: list[float] = []
    for _ in range(reps):
        for slices, drv in zip(off_by_build, off_drivers):
            slices.append(measure_request_seconds(drv, n=n, repeat=1))
        for drv in on_drivers:
            on.append(measure_request_seconds(drv, n=n, repeat=1))
    floor_a = min(off_by_build[0])
    floor_b = min(off_by_build[1])
    noise = max(floor_a, floor_b) / min(floor_a, floor_b)
    off = sorted(off_by_build[0] + off_by_build[1])
    on.sort()

    kernel = w5_on.provider.kernel
    transitions = kernel._transitions
    naive: dict[str, Any] = {
        "users": n_users, "m14_pipeline": False,
        "latency_us": round(off[0] * 1e6, 2),
        "best_slices_us": [round(s * 1e6, 2) for s in off[:4]],
        "throughput_rps": round(1.0 / off[0], 1),
    }
    fast: dict[str, Any] = {
        "users": n_users, "m14_pipeline": True,
        "latency_us": round(on[0] * 1e6, 2),
        "best_slices_us": [round(s * 1e6, 2) for s in on[:4]],
        "throughput_rps": round(1.0 / on[0], 1),
        "compiled_transitions": (len(transitions)
                                 if transitions is not None else 0),
        "batched_charges": w5_on.provider.db.stats()["batched_charges"],
    }
    return {
        "naive": naive,
        "fast": fast,
        "pipeline_removed_us": round(max(off[0] - on[0], 0.0) * 1e6, 2),
        "speedup": round(off[0] / on[0], 3),
        "naive_noise_ratio": round(noise, 4),
        "min_speedup": M14_MIN_SPEEDUP,
        "max_naive_noise": M14_MAX_NAIVE_NOISE,
    }


def run_stage_breakdown(n_users: int = 100, n: int = 120,
                        reps: int = 10) -> dict[str, Any]:
    """Per-stage attribution: each M14 flag alone on the naive base.

    Five deployments measured in interleaved slices — the naive
    pipeline plus one per flag — so each flag's floor-vs-naive-floor
    delta is that stage's end-to-end contribution in µs.  Too slow
    for CI (record.py runs :func:`run_comparison` only); this feeds
    the per-stage table in docs/PERFORMANCE.md part VIII.
    """
    modes: list[Optional[str]] = [None] + list(M14_FLAGS)
    drivers = []
    for only in modes:
        _, drv = build_deployment(n_users, fast=False, only=only)
        drivers.append(drv)
    for drv in drivers:
        measure_request_seconds(drv, n=n, repeat=2)
    slices: list[list[float]] = [[] for _ in modes]
    for _ in range(reps):
        for out, drv in zip(slices, drivers):
            out.append(measure_request_seconds(drv, n=n, repeat=1))
    floors = [min(s) for s in slices]
    naive_us = floors[0] * 1e6
    out: dict[str, Any] = {"naive_us": round(naive_us, 2)}
    for only, floor in zip(modes[1:], floors[1:]):
        out[only] = {
            "latency_us": round(floor * 1e6, 2),
            "saved_us": round(naive_us - floor * 1e6, 2),
        }
    return out
