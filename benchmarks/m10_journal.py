"""M10 shared harness: incremental durability vs. full-snapshot cost.

Builds a provider with ``n_users`` accounts (each with a home file,
every 16th with a declassifier grant), checkpoints it, dirties a
``dirty_frac`` fraction of the accounts, and measures:

* **snapshot latency** — a full ``snapshot_provider`` walks every
  account, file, row, and grant (O(total state)); the incremental path
  emits only what changed since the checkpoint (O(dirty)), so the gap
  widens linearly with deployment size;
* **mutation throughput** — the journaled provider pays one
  checksummed JSON-line append per durable mutation; we run the
  representative W5 write mix (a user-data file write, a profile
  update, and an app db write through the request plane) against the
  ``incremental_persistence=False`` baseline and report the overhead
  ratio, plus the worst-case direct-API ratio (no request plane to
  amortize the append);
* **recovery** — base snapshot + journal replay back to a live
  provider, timed, with the record count from the replay report.

Used by both ``test_bench_m10_journal.py`` (assertions + table) and
``record.py`` (BENCH_M10.json + the 3x regression guard), so the two
always measure the same thing.

Plain imports only: ``record.py`` runs as a script, so this module
must work without the package context.
"""

from __future__ import annotations

import copy
import json
import time
from typing import Any

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.net import ExternalClient
from repro.platform import (Provider, ProviderConfig, recover_provider,
                            snapshot_provider)


def _best_seconds(fn, *, n: int, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def _snapshot_bytes(state: dict) -> int:
    """Size of the snapshot as serialized JSON (the artifact a real
    deployment would ship); bytes payloads are hex-encoded."""
    return len(json.dumps(
        state, default=lambda o: o.hex()
        if isinstance(o, (bytes, bytearray)) else repr(o)))


def build_provider(n_users: int, incremental: bool,
                   compact_bytes: int = 1 << 26) -> Provider:
    """A deployment with per-user home files and some policy state.

    ``compact_bytes`` is set high so measurements see pure deltas; the
    compaction path itself is exercised by the tier-1 tests.
    """
    p = Provider(name=f"m10-{'incr' if incremental else 'naive'}"
                      f"-{n_users}",
                 config=ProviderConfig(
                     incremental_persistence=incremental,
                     journal_compact_bytes=compact_bytes))
    install_standard_apps(p)
    for i in range(n_users):
        u = f"user{i:05d}"
        p.signup(u, "pw")
        p.store_user_data(u, "home.txt", f"home of {u} " + "x" * 64)
        if i % 16 == 0:
            p.grant_builtin_declassifier(u, "public", {})
    return p


def run_tier(n_users: int, dirty_frac: float = 0.01,
             repeat: int = 3) -> dict[str, Any]:
    """One deployment-size measurement: full vs. incremental snapshot
    latency at ``dirty_frac`` dirty accounts, plus recovery timing."""
    p = build_provider(n_users, incremental=True)
    p._durability.checkpoint()

    n_dirty = max(1, int(n_users * dirty_frac))
    for i in range(n_dirty):
        u = f"user{i:05d}"
        p.set_profile(u, mood=f"m{i}")
        p.store_user_data(u, "note.txt", f"note {i}")

    full_s = _best_seconds(lambda: snapshot_provider(p),
                           n=1, repeat=repeat + 2)
    incr_s = _best_seconds(
        lambda: snapshot_provider(p, incremental=True),
        n=10, repeat=repeat)

    full_bytes = _snapshot_bytes(snapshot_provider(p))
    delta_bytes = _snapshot_bytes(snapshot_provider(p, incremental=True))

    base = copy.deepcopy(p._durability.base)
    raw = p._durability.journal.raw_bytes()
    t0 = time.perf_counter()
    recovered, report = recover_provider(base, raw,
                                         app_catalog=STANDARD_CATALOG)
    recover_s = time.perf_counter() - t0
    assert recovered.read_user_data("user00000", "note.txt") == "note 0"

    return {
        "users": n_users,
        "dirty": n_dirty,
        "full_ms": round(full_s * 1e3, 3),
        "incremental_ms": round(incr_s * 1e3, 3),
        "snapshot_speedup": round(full_s / incr_s, 1),
        "full_bytes": full_bytes,
        "delta_bytes": delta_bytes,
        "bytes_ratio": round(full_bytes / max(delta_bytes, 1), 1),
        "recover_ms": round(recover_s * 1e3, 3),
        "records_replayed": report["records_replayed"],
        "journal_stats": p.persistence_stats(),
    }


def _client(p: Provider, username: str) -> ExternalClient:
    p.enable_app(username, "blog", allow_write=True)
    client = ExternalClient(username, p.transport())
    client.login("pw")
    return client


def mutation_overhead(n_users: int = 200, n: int = 200,
                      repeat: int = 3) -> dict[str, Any]:
    """Journaled vs. no-journal mutation throughput, same workload.

    ``mix`` is the representative W5 write path: one user-data file
    write + one profile update + one app db write through the request
    plane per iteration.  ``direct`` is the adversarial case — just
    the two direct API mutations, nothing to amortize the journal
    append against.
    """
    results: dict[str, dict[str, float]] = {}
    for mode, incremental in (("journaled", True), ("naive", False)):
        p = build_provider(n_users, incremental=incremental)
        if incremental:
            p._durability.checkpoint()
        client = _client(p, "user00000")
        count = iter(range(10_000_000))

        def mix():
            i = next(count)
            u = f"user{i % n_users:05d}"
            p.store_user_data(u, f"mix{i}.txt", "payload " * 8)
            p.set_profile(u, seq=str(i))
            client.get("/app/blog/post", title=f"t{i}", body="b" * 32)

        def direct():
            i = next(count)
            u = f"user{i % n_users:05d}"
            p.store_user_data(u, f"dir{i}.txt", "payload " * 8)
            p.set_profile(u, seq=str(i))

        results[mode] = {
            "mix_us": round(
                _best_seconds(mix, n=n, repeat=repeat) * 1e6, 2),
            "direct_us": round(
                _best_seconds(direct, n=n, repeat=repeat) * 1e6, 2),
        }
    journaled, naive = results["journaled"], results["naive"]
    return {
        "users": n_users,
        "journaled_mix_us": journaled["mix_us"],
        "naive_mix_us": naive["mix_us"],
        "mix_overhead": round(journaled["mix_us"] / naive["mix_us"], 3),
        "journaled_direct_us": journaled["direct_us"],
        "naive_direct_us": naive["direct_us"],
        "direct_overhead": round(
            journaled["direct_us"] / naive["direct_us"], 3),
    }
