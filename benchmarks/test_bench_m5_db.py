"""M5 — mechanism cost: labeled-store query performance.

Query latency vs row count and label diversity; label-filtered scans
vs the unlabeled lower bound; indexed vs full-scan selects.
"""

import pytest

from repro.db import LabeledStore
from repro.kernel import Kernel
from repro.labels import FlowCache, Label


def _store(n_rows, n_owners, cached=True):
    kernel = Kernel(flow_cache=FlowCache(enabled=cached))
    provider = kernel.spawn_trusted("provider")
    store = LabeledStore(kernel)
    store.create_table(provider, "t", indexes=["k"])
    writers = []
    for i in range(n_owners):
        tag = kernel.create_tag(provider, purpose=f"u{i}")
        writers.append(kernel.spawn_trusted(f"w{i}", slabel=Label([tag])))
    for i in range(n_rows):
        writer = writers[i % n_owners] if writers else provider
        store.insert(writer, "t", {"k": i % 50, "v": i})
    reader = kernel.spawn_trusted("reader")  # sees nothing labeled
    return store, provider, reader


@pytest.mark.parametrize("cached", [True, False],
                         ids=["cached", "uncached"])
@pytest.mark.parametrize("n_rows", [100, 1000])
def test_bench_m5_filtered_full_scan(benchmark, n_rows, cached):
    """The per-row-verdict cache's target case: a scan over rows drawn
    from a small set of distinct labels re-checks each label once."""
    store, provider, reader = _store(n_rows, n_owners=10, cached=cached)
    rows = benchmark(store.select, reader, "t",
                     predicate=lambda r: r["v"] % 2 == 0)
    assert rows == []  # reader is cleared for nothing


@pytest.mark.parametrize("n_rows", [100, 1000])
def test_bench_m5_cleared_full_scan(benchmark, n_rows):
    store, provider, reader = _store(n_rows, n_owners=0)
    rows = benchmark(store.select, provider, "t",
                     predicate=lambda r: r["v"] % 2 == 0)
    assert len(rows) == n_rows // 2


def test_bench_m5_indexed_vs_scan(benchmark):
    store, provider, reader = _store(2000, n_owners=0)
    rows = benchmark(store.select, provider, "t", where={"k": 7})
    assert len(rows) == 40


def test_bench_m5_unlabeled_baseline(benchmark):
    """Lower bound: the same query over a plain list of dicts."""
    data = [{"k": i % 50, "v": i} for i in range(1000)]

    def bare_query():
        return [dict(r) for r in data if r["v"] % 2 == 0]

    assert len(benchmark(bare_query)) == 500
