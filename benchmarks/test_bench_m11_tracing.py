"""M11 — request tracing: span trees at near-zero disabled cost.

The observability claim, as assertions on the M8 request mix:

* **disabled** tracing is free: two independently built
  ``tracing=False`` deployments reproduce each other's latency floor
  (within the 3% budget) — every instrumentation site is one
  ``enabled`` attribute load or an allocation-free null span;
* **enabled** tracing is modest: a root span, exact request
  histograms, audit correlation, and the flight recorder on every
  request, the fully annotated tree on sampled ones;
* the traced run actually covers the stack: gateway, kernel, app,
  data-plane, and egress span names all appear, every started trace
  finishes, and the recorder keeps the slow tail.
"""

import pytest

from .conftest import print_table
from .m11_tracing import (M11_MAX_DISABLED_NOISE,
                          M11_MAX_ENABLED_OVERHEAD, run_overhead)

N_USERS = 100


@pytest.fixture(scope="module")
def overhead():
    result = run_overhead(n_users=N_USERS)
    print_table(
        f"M11 tracing overhead ({N_USERS}-user M8 mix)",
        ["mode", "latency µs", "throughput rps", "ratio"],
        [["disabled (floor)", result["baseline"]["latency_us"],
          result["baseline"]["throughput_rps"], "1.0x"],
         ["disabled (other build's floor)", "", "",
          f"{result['disabled_noise_ratio']}x"],
         ["traced (floor)", result["traced"]["latency_us"],
          result["traced"]["throughput_rps"],
          f"{result['enabled_ratio']}x"]])
    return result


def test_bench_m11_disabled_is_within_noise(overhead):
    noise = overhead["disabled_noise_ratio"]
    assert noise < M11_MAX_DISABLED_NOISE, (
        f"two tracing=False builds' latency floors differ by {noise}x "
        f"(budget {M11_MAX_DISABLED_NOISE}x): the disabled path is "
        f"not disappearing into build-to-build noise")


def test_bench_m11_enabled_overhead_is_modest(overhead):
    ratio = overhead["enabled_ratio"]
    assert ratio < M11_MAX_ENABLED_OVERHEAD, (
        f"tracing costs {ratio}x on the M8 mix "
        f"(budget {M11_MAX_ENABLED_OVERHEAD}x)")


def test_bench_m11_traced_run_covers_the_stack(overhead):
    names = set(overhead["traced"]["span_names"])
    for expected in ("gateway.admission", "gateway.egress",
                     "kernel.checkout", "app.run", "db.select"):
        assert expected in names, f"no {expected} span in traced run"
    stats = overhead["traced"]["tracer"]
    assert stats["traces_started"] == stats["traces_finished"]
    assert stats["spans_dropped"] == 0
    recorder = overhead["traced"]["recorder"]
    assert recorder["kept_slow"] > 0
    assert recorder["offered"] == stats["traces_finished"]


def test_bench_m11_traced_request_latency(benchmark):
    """pytest-benchmark point: one traced labeled read."""
    from .m8_scaling import build_deployment
    _, driver = build_deployment(N_USERS, fast=True, tracing=True)
    resp = benchmark(driver.get, "/app/blog/read", title="t0")
    assert resp.ok
