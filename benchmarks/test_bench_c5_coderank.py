"""C5 — §3.2: dependency-graph code search finds trustworthy modules.

Three rankers over a ground-truthed synthetic ecosystem (planted
quality core + sybil spam clique): raw popularity, uniform PageRank,
and adoption-personalized CodeRank.  Precision@k of recovering the
planted core, plus the C5b ablation over damping and edge weights.
"""

from repro.search import DependencyGraph, coderank, popularity_rank, \
    precision_at_k
from repro.workloads import make_module_ecosystem

from .conftest import print_table


def run_ranking_experiment():
    eco = make_module_ecosystem(n_apps=60, n_core=6, n_spam=8, seed=3)
    dg = DependencyGraph(graph=eco.graph)
    candidates = (eco.planted_core | eco.spam_clique
                  | {m for m in eco.modules if m.startswith("filler-")})
    k = len(eco.planted_core)

    rankers = {
        "popularity (self-reported)": popularity_rank(eco.usage_counts),
        "uniform PageRank": coderank(dg),
        "adoption-personalized CodeRank": coderank(
            dg, personalization=eco.adoption_counts),
    }
    precision = {name: precision_at_k(scores, eco.planted_core, k,
                                      restrict_to=candidates)
                 for name, scores in rankers.items()}

    # C5b ablation: damping and embed weight under personalization
    ablation = {}
    for damping in (0.5, 0.85, 0.95):
        scores = coderank(dg, damping=damping,
                          personalization=eco.adoption_counts)
        ablation[f"damping={damping}"] = precision_at_k(
            scores, eco.planted_core, k, restrict_to=candidates)
    for embed_w in (0.1, 0.5, 1.0):
        scores = coderank(dg, embed_weight=embed_w,
                          personalization=eco.adoption_counts)
        ablation[f"embed_weight={embed_w}"] = precision_at_k(
            scores, eco.planted_core, k, restrict_to=candidates)
    return precision, ablation


def test_bench_c5_code_search(benchmark):
    precision, ablation = benchmark(run_ranking_experiment)

    assert precision["popularity (self-reported)"] == 0.0
    assert precision["adoption-personalized CodeRank"] >= 0.8
    assert (precision["adoption-personalized CodeRank"]
            > precision["uniform PageRank"])

    print_table("C5: precision@k recovering the planted quality core",
                ["ranker", "precision@k"],
                [[name, p] for name, p in precision.items()])
    print_table("C5b ablation (personalized CodeRank)",
                ["setting", "precision@k"],
                [[name, p] for name, p in ablation.items()])
