"""M16 shared harness: fleet observability cost on the sharded plane.

The M11 invariant, restated for the fleet: cross-shard trace
propagation only earns its place if the *disabled* path costs nothing
on top of the M14 fast plane and the *armed* path adds single-digit
microseconds per request.  Two measurements:

* **disabled** — a 2-shard serial ``ShardedProvider(tracing=False)``
  on the M13 batched read mix, routed path (``handle_batch``: the
  full M13 router — ``shard_for`` + group + dispatch + reassemble +
  ``_note_response`` — plus the M16 plumbing: one ``tracer.enabled``
  load, the engines' (ctx=None, empty-skeleton) tuple shape) vs. the
  *same pre-grouped requests dispatched directly* to the deployment's
  own shard providers — each a complete M14 ``fast()`` provider, so
  the denominator **is** the M14 fast baseline executing the
  identical work.  The same builds serve both paths, so build-to-
  build heap-layout luck (±5% between *different* deployments on
  this container, documented by the M11/M13 bounds — larger than the
  effect measured) cancels from the ratio; the quantity guarded is
  everything the fleet plane adds per request with tracing off, and
  M16 cannot hide new disabled-path work inside it;

* **armed** — the same deployment with ``tracing=True``, fleet path
  (``handle_batch``: router root span + context export + per-shard
  ``RemoteCapture`` + skeleton serialization + graft stitch) vs. the
  shard-local path (``_run_batch(reqs, None)``: the identical fan-out
  with per-shard tracing but no propagation — exactly what pre-M16
  sharded tracing did).  The *difference* of the two floors is the
  per-request premium of fleet stitching, and it is guarded as an
  absolute microsecond budget, not a ratio, because the traced
  request underneath is already ~10x the premium.

Both measurements interleave their two paths in measurement slices on
shared builds, per the M11 drift-resistant protocol.  The armed
premium subtracts the two paths' no-interruption floors; the disabled
ratio is the median of paired per-slice ratios (see
:func:`run_disabled` for why floors are the wrong statistic there).

Used by both ``test_bench_m16_fleet_obs.py`` (assertions + table) and
``record.py`` (BENCH_M16.json + the regression guard), so the two
always measure the same thing.
"""

from __future__ import annotations

import statistics
from typing import Any

from repro.apps import install_standard_apps
from repro.net.http import HttpRequest
from repro.platform import ShardedProvider

try:  # package context (pytest)
    from .m13_shards import _populate, measure_batch_seconds
except ImportError:  # script context (record.py)
    from m13_shards import _populate, measure_batch_seconds

#: Disabled bound: routed ``handle_batch`` vs. direct per-shard
#: dispatch on the same untraced builds, scored by the median of
#: paired per-slice ratios.  The gap
#: is the M13 routing (``shard_for``, grouping, reassembly,
#: ``_note_response``) plus the M16 plumbing (one attribute load, a
#: ctx=None argument, an empty skeleton list per shard): measured
#: ~0.8us on the ~32us read, a 1.02-1.03x ratio — the serial
#: engine's sub-batches keep the M12 shared-plan path, so routing is
#: the only real work.  Because both paths share builds, the ratio is
#: free of the cross-deployment layout spread; 1.05 leaves ~2x the
#: measured cost as headroom while catching any real per-request work
#: the disabled fleet plane might grow.
M16_MAX_DISABLED_OVERHEAD = 1.05
#: Armed bound: the fleet premium (stitched minus shard-local floors)
#: per cross-shard request.  The premium is context export + remote
#: capture window + skeleton dict per trace + graft merge at close,
#: measured at 5-9us per request on the dev container (the skeleton
#: serialization dominates).  15us keeps real headroom for CI: a
#: premium past it means per-span work crept into the capture window.
M16_MAX_ARMED_DELTA_US = 15.0

N_USERS = 48
N_SHARDS = 2


def build_fleet(tracing: bool, n_users: int = N_USERS
                ) -> tuple[ShardedProvider, list[HttpRequest]]:
    """A 2-shard serial deployment on the M13 read mix."""
    sp = ShardedProvider(name="m16", n_shards=N_SHARDS, engine="serial",
                         tracing=tracing)
    install_standard_apps(sp)
    reads = _populate(sp, sp, n_users)
    return sp, reads


def measure_local_seconds(sp: ShardedProvider,
                          requests: list[HttpRequest],
                          loops: int = 8, repeat: int = 3) -> float:
    """Best-of seconds per request through ``_run_batch(reqs, None)``
    — the pre-M16 shard-local fan-out (tracing per shard, no
    propagation, no stitch)."""
    import time
    responses = sp._run_batch(requests, None)  # warm
    assert all(r.status == 200 for r in responses)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(loops):
            sp._run_batch(requests, None)
        best = min(best, time.perf_counter() - t0)
    return best / (len(requests) * loops)


def _pre_group(sp: ShardedProvider, requests: list[HttpRequest]
               ) -> list[tuple[int, list[HttpRequest]]]:
    """The router's grouping, done once up front, ascending shards."""
    groups: dict[int, list[HttpRequest]] = {}
    for request in requests:
        groups.setdefault(sp.shard_for(request), []).append(request)
    assert len(groups) >= 2, "read mix must span shards"
    return sorted(groups.items())


def measure_direct_seconds(sp: ShardedProvider,
                           grouped: list[tuple[int, list[HttpRequest]]],
                           n: int, loops: int = 8) -> float:
    """One slice's seconds per request dispatching pre-grouped
    sub-batches straight to the shard providers — the M14 fast
    baseline doing the identical work with the fleet plane peeled
    off."""
    import time
    t0 = time.perf_counter()
    for _ in range(loops):
        for shard, reqs in grouped:
            sp.shards[shard].handle_batch(reqs)
    return (time.perf_counter() - t0) / (n * loops)


def run_disabled(n_users: int = N_USERS, loops: int = 8,
                 reps: int = 14) -> dict[str, Any]:
    """Disabled-path cost: routed vs. direct on the same builds.

    Like the armed measurement, the *same untraced builds* serve both
    paths — ``handle_batch`` (the full fleet plane) and direct
    per-shard dispatch of the identical pre-grouped requests (the M14
    fast baseline) — so the ratio isolates exactly what the fleet
    plane adds per request, with build-to-build layout luck
    cancelled.  Comparing *different* deployments instead (2-shard
    vs. unsharded builds) puts a documented ±5% layout spread under a
    5% bound — an extreme-value coin flip, not a guard.

    The score is the **median of paired per-slice ratios**: each rep
    times the two paths back-to-back (order alternating per rep), so
    a sustained-load period inflates both halves of a pair and drops
    out of its ratio, and the median discards pairs a spike split
    down the middle.  Global floors are unsafe here — under sustained
    noise whichever path lucks into the single quietest slice wins,
    which showed up as a ±10% coin flip on the dev container.
    """
    builds = [build_fleet(False, n_users), build_fleet(False, n_users)]
    grouped = [_pre_group(sp, reads) for sp, reads in builds]
    for (sp, reads), groups in zip(builds, grouped):
        responses = sp.handle_batch(reads)  # warm + correctness
        assert all(r.status == 200 for r in responses)
        measure_direct_seconds(sp, groups, len(reads), loops=loops)
    direct_s: list[float] = []
    routed_s: list[float] = []
    ratios: list[float] = []
    for rep in range(reps):
        for (sp, reads), groups in zip(builds, grouped):
            if rep % 2 == 0:
                direct = measure_direct_seconds(
                    sp, groups, len(reads), loops=loops)
                routed = measure_batch_seconds(
                    sp, reads, loops=loops, repeat=1)
            else:
                routed = measure_batch_seconds(
                    sp, reads, loops=loops, repeat=1)
                direct = measure_direct_seconds(
                    sp, groups, len(reads), loops=loops)
            direct_s.append(direct)
            routed_s.append(routed)
            ratios.append(routed / direct)
    ratio = statistics.median(ratios)
    direct = min(direct_s)
    routed = min(routed_s)
    return {
        "direct_us": round(direct * 1e6, 3),
        "fleet_disabled_us": round(routed * 1e6, 3),
        "router_overhead_us": round((ratio - 1.0) * direct * 1e6, 3),
        "ratio": round(ratio, 4),
        "max_ratio": M16_MAX_DISABLED_OVERHEAD,
    }


def run_armed(n_users: int = N_USERS, loops: int = 6,
              reps: int = 14) -> dict[str, Any]:
    """Armed premium: stitched fleet tracing vs. shard-local tracing.

    Both modes run on traced 2-shard deployments; the *same builds*
    serve both measurement paths (handle_batch vs. _run_batch), so
    build-to-build layout luck cancels out of the subtraction
    entirely — only the stitching code differs between the paths.
    """
    builds = [build_fleet(True, n_users), build_fleet(True, n_users)]
    for sp, reads in builds:
        measure_batch_seconds(sp, reads, loops=loops, repeat=1)  # warm
        measure_local_seconds(sp, reads, loops=loops, repeat=1)
    local_s: list[float] = []
    stitched_s: list[float] = []
    for _ in range(reps):
        for sp, reads in builds:
            local_s.append(
                measure_local_seconds(sp, reads, loops=loops, repeat=1))
            stitched_s.append(
                measure_batch_seconds(sp, reads, loops=loops, repeat=1))
    local = min(local_s)
    stitched = min(stitched_s)
    sp = builds[0][0]
    (batch,) = [t for t in sp.recorder.dump()["slowest"]
                if t["root"] and t["root"]["name"] == "router.batch"][:1] \
        or [{}]
    return {
        "local_traced_us": round(local * 1e6, 3),
        "fleet_traced_us": round(stitched * 1e6, 3),
        "premium_us": round((stitched - local) * 1e6, 3),
        "max_premium_us": M16_MAX_ARMED_DELTA_US,
        "router": sp.tracer.stats(),
        "sample_grafts": batch.get("grafts", 0),
    }


def run_fleet_obs(n_users: int = N_USERS, loops: int = 6,
                  reps: int = 14) -> dict[str, Any]:
    disabled = run_disabled(n_users, loops, reps)
    armed = run_armed(n_users, loops, reps)
    return {
        "users": n_users, "shards": N_SHARDS, "engine": "serial",
        "disabled": disabled,
        "armed": armed,
        "regression": (disabled["ratio"] > M16_MAX_DISABLED_OVERHEAD
                       or armed["premium_us"] > M16_MAX_ARMED_DELTA_US),
    }
