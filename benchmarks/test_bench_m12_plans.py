"""M12 — compiled request plans: sub-10µs cached decision reads.

The planned-dispatch claim, as assertions on the M8 request mix:

* the **cached read** — the compiled decision path on a plan hit
  (lookup + pool key + state-keyed partition verdicts + precomputed
  egress verdict) — costs under 10µs per request; it is the whole
  control plane the planned loop interprets per steady-state request;
* **end to end**, planned dispatch beats the unplanned plane on the
  identical byte-for-byte pipeline (floor over floor, M11 protocol),
  because the ~15µs of per-request interpretation it removes is real;
* two independently built **unplanned** deployments reproduce each
  other's floor, so the comparison is not measuring build luck;
* the plan cache actually runs hot: one compile, then hits.
"""

import pytest

from .conftest import print_table
from .m12_plans import (M12_MAX_CACHED_READ_US, M12_MAX_PLANNED_RATIO,
                        M12_MAX_UNPLANNED_NOISE, build_deployment,
                        run_comparison)

N_USERS = 100


@pytest.fixture(scope="module")
def comparison():
    result = run_comparison(n_users=N_USERS)
    print_table(
        f"M12 planned dispatch ({N_USERS}-user M8 mix)",
        ["mode", "latency µs", "throughput rps", "ratio"],
        [["unplanned (floor)", result["unplanned"]["latency_us"],
          result["unplanned"]["throughput_rps"], "1.0x"],
         ["unplanned (other build's floor)", "", "",
          f"{result['unplanned_noise_ratio']}x"],
         ["planned (floor)", result["planned"]["latency_us"],
          result["planned"]["throughput_rps"],
          f"{result['planned_ratio']}x"],
         ["planned (batched)", result["planned"]["batch_latency_us"],
          "", ""],
         ["cached decision read", result["cached_read_us"], "", ""]])
    return result


def test_bench_m12_cached_read_is_sub_10us(comparison):
    cached = comparison["cached_read_us"]
    assert cached < M12_MAX_CACHED_READ_US, (
        f"the compiled decision path costs {cached}us per hit "
        f"(budget {M12_MAX_CACHED_READ_US}us): plan reads are no "
        f"longer constant-time lookups")


def test_bench_m12_planned_dispatch_wins_end_to_end(comparison):
    ratio = comparison["planned_ratio"]
    assert ratio < M12_MAX_PLANNED_RATIO, (
        f"planned dispatch runs at {ratio}x the unplanned plane "
        f"(budget {M12_MAX_PLANNED_RATIO}x): plans no longer pay "
        f"for themselves")


def test_bench_m12_unplanned_builds_agree(comparison):
    noise = comparison["unplanned_noise_ratio"]
    assert noise < M12_MAX_UNPLANNED_NOISE, (
        f"two unplanned builds' latency floors differ by {noise}x "
        f"(budget {M12_MAX_UNPLANNED_NOISE}x): the comparison is "
        f"drowning in build-to-build noise")


def test_bench_m12_plan_cache_runs_hot(comparison):
    stats = comparison["planned"]["plans"]
    assert stats["enabled"]
    assert stats["entries"] >= 1
    assert stats["misses"] <= stats["entries"] + 2  # compiles, not churn
    assert stats["hits"] > 100 * stats["misses"]
    assert stats["invalidated"] == 0  # no policy mutations in this mix


def test_bench_m12_planned_request_latency(benchmark):
    """pytest-benchmark point: one planned labeled read."""
    _, driver = build_deployment(N_USERS, plans=True)
    resp = benchmark(driver.get, "/app/blog/read", title="t0")
    assert resp.ok
