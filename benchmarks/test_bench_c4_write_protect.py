"""C4 — §3.1: write protection stops vandals.

The vandal app attacks M user files in three configurations: without
any grant, enabled read-only, and enabled with write privilege (the
user's own informed delegation).  Corrupted-file counts per row.
"""

from repro import W5System

from .conftest import print_table

N_FILES = 10


def run_vandal_campaign():
    results = {}
    for config in ("not-enabled", "read-only", "write-granted"):
        w5 = W5System(with_adversaries=True)
        bob = w5.add_user("bob")
        for i in range(N_FILES):
            w5.provider.store_user_data("bob", f"f{i}.txt", f"original-{i}")
        if config == "read-only":
            w5.provider.enable_app("bob", "vandal", allow_write=False)
        elif config == "write-granted":
            w5.provider.enable_app("bob", "vandal", allow_write=True)
        eve = w5.add_user("eve")
        attacker = bob if config == "write-granted" else eve
        attacker.get("/app/vandal/go", victim="bob", mode="deface")
        corrupted = sum(
            1 for i in range(N_FILES)
            if w5.provider.read_user_data("bob", f"f{i}.txt")
            != f"original-{i}")
        results[config] = corrupted
    return results


def test_bench_c4_write_protection(benchmark):
    results = benchmark(run_vandal_campaign)

    assert results["not-enabled"] == 0
    assert results["read-only"] == 0
    assert results["write-granted"] == N_FILES  # delegation is real power

    print_table(
        f"C4: vandal vs {N_FILES} write-protected files",
        ["configuration", "files corrupted"],
        [["vandal not enabled", results["not-enabled"]],
         ["enabled, read-only", results["read-only"]],
         ["enabled with write grant", results["write-granted"]]])
