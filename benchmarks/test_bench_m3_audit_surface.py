"""M3 — §3.1: "declassifiers are typically much smaller than entire
applications, they are easier to audit."

Table of non-blank source lines: every built-in declassifier vs every
catalog application.  The claim holds if the largest declassifier is
well under the smallest real application.
"""

from repro.apps import STANDARD_CATALOG
from repro.declassify import BUILTINS

from .conftest import print_table


def collect_audit_surfaces():
    declassifiers = {name: cls.audit_surface_loc()
                     for name, cls in BUILTINS.items()}
    apps = {m.name: m.loc() for m in STANDARD_CATALOG if m.kind == "app"}
    return declassifiers, apps


def test_bench_m3_audit_surface(benchmark):
    declassifiers, apps = benchmark(collect_audit_surfaces)

    biggest_declass = max(declassifiers.values())
    smallest_app = min(apps.values())
    assert biggest_declass < smallest_app
    mean_app = sum(apps.values()) / len(apps)
    mean_declass = sum(declassifiers.values()) / len(declassifiers)
    assert mean_app > 3 * mean_declass

    rows = [[f"declassifier: {n}", loc]
            for n, loc in sorted(declassifiers.items())]
    rows += [[f"application: {n}", loc] for n, loc in sorted(apps.items())]
    rows += [["— mean declassifier", round(mean_declass, 1)],
             ["— mean application", round(mean_app, 1)],
             ["— audit-surface ratio", f"{mean_app / mean_declass:.1f}x"]]
    print_table("M3: audit surface (non-blank source lines)",
                ["component", "LoC"], rows)
