"""A2 — ablation: enforcement granularity (OS-level vs language-level).

§3.1's two substrate families differ in what a mixed-provenance
response can deliver.  The same feed (items from F friends the viewer
may see + S strangers they may not) is served both ways:

* **process-level** (the platform's kernel model): the rendering
  process joins every tag it read; the response is all-or-nothing —
  one stranger item poisons the whole feed (403);
* **value-level** (:mod:`repro.lang`): each item carries its own
  label; the viewer receives exactly the friend items, with the
  stranger items withheld.

The table sweeps the stranger fraction and reports delivered items
under each model — the utility/coarseness trade quantified.
"""

from repro.labels import CapabilitySet, Label, TagRegistry, exportable_tags, minus
from repro.lang import LabeledList, lift, ljoin

from .conftest import print_table

N_ITEMS = 20


def run_granularity_sweep():
    rows = []
    for n_strangers in (0, 1, 5, 10):
        reg = TagRegistry()
        feed = LabeledList()
        friend_tags = []
        for i in range(N_ITEMS - n_strangers):
            tag = reg.create(purpose=f"friend{i}")
            friend_tags.append(tag)
            feed.append(lift({"from": f"friend{i}"}, Label([tag])))
        for i in range(n_strangers):
            tag = reg.create(purpose=f"stranger{i}")
            feed.append(lift({"from": f"stranger{i}"}, Label([tag])))
        authority = CapabilitySet([minus(t) for t in friend_tags])

        # value-level: per-item export
        delivered, withheld = feed.export_for(authority)

        # process-level: one label for the whole response
        combined = ljoin(iter(feed))
        all_or_nothing = N_ITEMS if exportable_tags(
            combined, authority).is_empty() else 0

        rows.append([f"{n_strangers}/{N_ITEMS}",
                     all_or_nothing, len(delivered), withheld])
    return rows


def test_bench_a2_granularity(benchmark):
    rows = benchmark(run_granularity_sweep)

    # with zero strangers both models deliver everything
    assert rows[0][1] == N_ITEMS and rows[0][2] == N_ITEMS
    # with any strangers, process-level collapses to zero while
    # value-level delivers exactly the authorized remainder
    for row in rows[1:]:
        n_str = int(row[0].split("/")[0])
        assert row[1] == 0
        assert row[2] == N_ITEMS - n_str
        assert row[3] == n_str

    print_table(
        f"A2: items delivered from a {N_ITEMS}-item mixed feed",
        ["stranger items", "process-level (kernel)",
         "value-level (lang)", "withheld"],
        rows)
