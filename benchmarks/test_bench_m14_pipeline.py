"""M14 — the squeezed mandated pipeline: same bytes, fewer µs.

The pipeline-squeeze claim, as assertions on the M8 labeled read:

* **end to end**, the four M14 shortcuts (lazy audit, compiled label
  transitions, batched charges, verdict slots) beat their naive twins
  by at least 1.2x (floor over floor, M11 protocol) on the identical
  byte-for-byte pipeline — plans are on for *both* sides, so this is
  the constant-factor squeeze alone, not a replay of the M12 win;
* two independently built **naive** deployments reproduce each
  other's floor, so the comparison is not measuring build luck;
* the shortcuts actually engage: the transition memo holds compiled
  entries and the store issues batched charges.

Byte-identity of the observables (audit stream, charge totals, denial
messages) is the differential suite's job
(tests/platform/test_plan_differential.py::TestM14FastPathsAreByteIdentical);
this file asserts only that the shortcuts are worth having.
"""

import pytest

from .conftest import print_table
from .m14_pipeline import (M14_MAX_NAIVE_NOISE, M14_MIN_SPEEDUP,
                           build_deployment, run_comparison)

N_USERS = 100


@pytest.fixture(scope="module")
def comparison():
    result = run_comparison(n_users=N_USERS)
    print_table(
        f"M14 pipeline squeeze ({N_USERS}-user M8 mix, plans on both sides)",
        ["mode", "latency µs", "throughput rps", "ratio"],
        [["naive pipeline (floor)", result["naive"]["latency_us"],
          result["naive"]["throughput_rps"], "1.0x"],
         ["naive (other build's floor)", "", "",
          f"{result['naive_noise_ratio']}x"],
         ["fast pipeline (floor)", result["fast"]["latency_us"],
          result["fast"]["throughput_rps"],
          f"{result['speedup']}x"],
         ["pipeline removed", result["pipeline_removed_us"], "", ""]])
    return result


def test_bench_m14_fast_pipeline_wins_end_to_end(comparison):
    speedup = comparison["speedup"]
    assert speedup >= M14_MIN_SPEEDUP, (
        f"the fast pipeline runs at {speedup}x the naive pipeline "
        f"(bar {M14_MIN_SPEEDUP}x): one of the four M14 shortcuts "
        f"quietly stopped being a shortcut")


def test_bench_m14_naive_builds_agree(comparison):
    noise = comparison["naive_noise_ratio"]
    assert noise < M14_MAX_NAIVE_NOISE, (
        f"two naive builds' latency floors differ by {noise}x "
        f"(budget {M14_MAX_NAIVE_NOISE}x): the comparison is "
        f"drowning in build-to-build noise")


def test_bench_m14_shortcuts_engage(comparison):
    fast = comparison["fast"]
    assert fast["m14_pipeline"] is True
    assert not comparison["naive"]["m14_pipeline"]
    # the two label changes per tainted read hit the transition memo
    assert fast["compiled_transitions"] >= 1
    # the partitioned scan charges through charge_many
    assert fast["batched_charges"] > 0


def test_bench_m14_fast_request_latency(benchmark):
    """pytest-benchmark point: one labeled read on the fast pipeline."""
    _, driver = build_deployment(N_USERS, fast=True)
    resp = benchmark(driver.get, "/app/blog/read", title="t0")
    assert resp.ok
