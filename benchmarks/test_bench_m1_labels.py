"""M1 — mechanism cost: label-operation microbenchmarks.

Throughput of the three hot-path label operations (flow check, join,
label-change check) as label size grows.  These bound the per-message
overhead every W5 operation pays.
"""

import pytest

from repro.labels import (CapabilitySet, Label, TagRegistry, can_flow,
                          can_flow_secrecy, label_change_allowed, minus,
                          plus)

from .conftest import print_table

_REG = TagRegistry()
_TAGS = [_REG.create(purpose=f"t{i}") for i in range(256)]


def _setup(size):
    a = Label(_TAGS[:size])
    b = Label(_TAGS[: size + size // 2 + 1])
    # caps cover the whole change: plus over b's tags, minus over half
    caps = CapabilitySet([plus(t) for t in _TAGS[: size + size // 2 + 1]]
                         + [minus(t) for t in _TAGS[: size // 2 + 1]])
    return a, b, caps


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_can_flow(benchmark, size):
    a, b, caps = _setup(size)
    result = benchmark(can_flow_secrecy, a, b, caps, caps)
    assert result
    print_table(f"M1: can_flow_secrecy, |label|={size}",
                ["op", "allowed"], [["can_flow_secrecy", result]])


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_join(benchmark, size):
    a, b, __ = _setup(size)
    joined = benchmark(lambda: a | b)
    assert len(joined) >= len(b)


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_label_change(benchmark, size):
    a, b, caps = _setup(size)
    result = benchmark(label_change_allowed, a, b, caps)
    assert result


def test_bench_m1_full_check(benchmark):
    a, b, caps = _setup(16)
    empty = Label.EMPTY
    result = benchmark(can_flow, a, empty, b, empty, caps, caps)
    assert result
