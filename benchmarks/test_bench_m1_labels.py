"""M1 — mechanism cost: label-operation microbenchmarks.

Throughput of the three hot-path label operations (flow check, join,
label-change check) as label size grows.  These bound the per-message
overhead every W5 operation pays.

The ``cached`` variants measure the same operations through the
:class:`~repro.labels.FlowCache` on a repeated-label workload — the
fast-path label engine's target case — and the speedup test asserts
the ≥2× acceptance bar.
"""

import time

import pytest

from repro.labels import (CapabilitySet, FlowCache, Label, TagRegistry,
                          can_flow, can_flow_secrecy, label_change_allowed,
                          minus, plus)

from .conftest import print_table

_REG = TagRegistry()
_TAGS = [_REG.create(purpose=f"t{i}") for i in range(256)]


def _setup(size):
    a = Label(_TAGS[:size])
    b = Label(_TAGS[: size + size // 2 + 1])
    # caps cover the whole change: plus over b's tags, minus over half
    caps = CapabilitySet([plus(t) for t in _TAGS[: size + size // 2 + 1]]
                         + [minus(t) for t in _TAGS[: size // 2 + 1]])
    return a, b, caps


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_can_flow(benchmark, size):
    a, b, caps = _setup(size)
    result = benchmark(can_flow_secrecy, a, b, caps, caps)
    assert result
    print_table(f"M1: can_flow_secrecy, |label|={size}",
                ["op", "allowed"], [["can_flow_secrecy", result]])


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_join(benchmark, size):
    a, b, __ = _setup(size)
    joined = benchmark(lambda: a | b)
    assert len(joined) >= len(b)


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_label_change(benchmark, size):
    a, b, caps = _setup(size)
    result = benchmark(label_change_allowed, a, b, caps)
    assert result


def test_bench_m1_full_check(benchmark):
    a, b, caps = _setup(16)
    empty = Label.EMPTY
    result = benchmark(can_flow, a, empty, b, empty, caps, caps)
    assert result


@pytest.mark.parametrize("size", [1, 8, 64])
def test_bench_m1_cached_flow_check(benchmark, size):
    """The memoized check on a repeated-label workload (pure hits
    after warm-up): this is what every kernel consumer now pays."""
    a, b, caps = _setup(size)
    cache = FlowCache()
    empty = Label.EMPTY
    cache.can_flow(a, empty, b, empty, caps, caps)  # warm
    result = benchmark(cache.can_flow, a, empty, b, empty, caps, caps)
    assert result
    # every benchmarked call after the warm-up was a hit
    assert cache.stats()["miss_total"] == 1


def test_bench_m1_cache_speedup():
    """Acceptance bar: ≥2× throughput on repeated-label flow checks
    with the cache enabled (measured, not benchmarked, so the ratio
    prints and asserts in one run)."""
    a, b, caps = _setup(64)
    empty = Label.EMPTY
    cache = FlowCache()
    n = 20_000

    t0 = time.perf_counter()
    for _ in range(n):
        can_flow(a, empty, b, empty, caps, caps)
    uncached_s = time.perf_counter() - t0

    cache.can_flow(a, empty, b, empty, caps, caps)  # warm
    t0 = time.perf_counter()
    for _ in range(n):
        cache.can_flow(a, empty, b, empty, caps, caps)
    cached_s = time.perf_counter() - t0

    speedup = uncached_s / cached_s
    print_table("M1: repeated flow check, |label|=64, cached vs uncached",
                ["variant", "ops/s"],
                [["uncached", n / uncached_s], ["cached", n / cached_s],
                 ["speedup", speedup]])
    assert speedup >= 2.0, f"cache speedup only {speedup:.2f}x"
