"""M9 shared harness: data-plane cost vs. distinct labels.

Builds a table with ``n_rows`` rows spread over ``n_labels`` distinct
``(slabel, ilabel)`` partitions (one secrecy tag per user contract —
the structure W5 deployments actually have), plus a filesystem tree
with the same label diversity, then measures label-filtered ``select``,
``update``, and ``walk`` on the partitioned engine against the naive
per-row/per-node engine.

The viewer is tainted with exactly one of the tags, so it sees the
public partition plus one secret partition — the everyday W5 query
shape where almost all rows are invisible.  Naive cost is O(rows);
partitioned cost is O(visible rows + distinct labels).

Used by both ``test_bench_m9_partitions.py`` (assertions + table) and
``record.py`` (BENCH_M9.json + the 3x regression guard), so the two
always measure the same thing.

Plain imports only: ``record.py`` runs as a script, so this module
must work without the package context.
"""

from __future__ import annotations

import time
from typing import Any

from repro.db import LabeledStore
from repro.fs import LabeledFileSystem
from repro.kernel import Kernel
from repro.labels import Label
from repro.resources import ResourceManager


def build_data_plane(n_rows: int, n_labels: int, partitioned: bool):
    """A store + filesystem with ``n_rows`` rows/files spread evenly
    over ``n_labels`` distinct secrecy labels, and a viewer tainted
    with exactly one of them."""
    kernel = Kernel(namespace=f"m9-{'part' if partitioned else 'naive'}"
                              f"-{n_labels}",
                    resources=ResourceManager())
    store = LabeledStore(kernel, partitioned=partitioned)
    fs = LabeledFileSystem(kernel, grouped_walk=partitioned)
    provider = kernel.spawn_trusted("provider")
    tags = [kernel.create_tag(provider, purpose=f"user{i}")
            for i in range(n_labels)]
    writers = [kernel.spawn_trusted(f"writer{i}", slabel=Label([tags[i]]))
               for i in range(n_labels)]
    viewer = kernel.spawn_trusted("viewer", slabel=Label([tags[0]]))

    store.create_table(provider, "items", indexes=("k",))
    for i in range(n_rows):
        store.insert(writers[i % n_labels], "items",
                     {"k": i % 16, "n": i})

    # one directory per label, files inside — the per-user home layout
    for j, tag in enumerate(tags):
        fs.mkdir(provider, f"/u{j}", slabel=Label([tag]))
        for i in range(max(1, min(8, n_rows // max(n_labels, 1) // 4))):
            fs.create(writers[j], f"/u{j}/f{i}", i)
    return kernel, store, fs, viewer


def _seconds_per_op(fn, *, n: int, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def run_tier(n_rows: int, n_labels: int, partitioned: bool,
             n: int = 20, repeat: int = 3) -> dict[str, Any]:
    """One (labels, engine) measurement with partition observability."""
    kernel, store, fs, viewer = build_data_plane(n_rows, n_labels,
                                                 partitioned)
    select_s = _seconds_per_op(
        lambda: store.select(viewer, "items",
                             predicate=lambda v: v["n"] % 7 == 0),
        n=n, repeat=repeat)
    count_s = _seconds_per_op(
        lambda: store.count(viewer, "items", where={"k": 3}),
        n=n, repeat=repeat)
    update_s = _seconds_per_op(
        lambda: store.update(viewer, "items", where={"k": 3},
                             changes={"n": 0}),
        n=n, repeat=repeat)
    walk_s = _seconds_per_op(
        lambda: sum(1 for _ in fs.walk(viewer)), n=n, repeat=repeat)
    return {
        "rows": n_rows,
        "labels": n_labels,
        "partitioned": partitioned,
        "select_us": round(select_s * 1e6, 2),
        "count_us": round(count_s * 1e6, 2),
        "update_us": round(update_s * 1e6, 2),
        "walk_us": round(walk_s * 1e6, 2),
        "db_stats": store.stats(),
        "fs_stats": fs.stats(),
    }
