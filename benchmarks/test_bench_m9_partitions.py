"""M9 — data-plane scaling: query cost vs. distinct labels.

The tentpole claim: a label-filtered query's visibility cost scales
with *distinct label pairs*, not rows.  We build a 10k-row table (and
a matching per-user directory tree) at 2 / 16 / 128 distinct labels
and measure select/count/update/walk on the partitioned engine against
the naive per-row engine, asserting the shapes:

* **partitioned** beats naive at every diversity, decisively at 128
  labels (where the viewer sees ~1/128th of the table);
* the partitioned engine really skips: its stats report invisible
  partitions pruned wholesale;
* the two engines return identical results (spot check — the full
  equivalence proof is ``tests/db/test_partition_differential.py``).
"""

import pytest

from .conftest import print_table
from .m9_partitions import build_data_plane, run_tier

N_ROWS = 10_000
LABEL_TIERS = (2, 16, 128)


@pytest.fixture(scope="module")
def tiers():
    part = {k: run_tier(N_ROWS, k, partitioned=True) for k in LABEL_TIERS}
    naive = {k: run_tier(N_ROWS, k, partitioned=False, n=5)
             for k in LABEL_TIERS}
    print_table(
        "M9 data-plane scaling (per-query latency, 10k rows)",
        ["labels", "part sel µs", "naive sel µs", "part walk µs",
         "naive walk µs"],
        [[k,
          part[k]["select_us"], naive[k]["select_us"],
          part[k]["walk_us"], naive[k]["walk_us"]]
         for k in LABEL_TIERS])
    return part, naive


def test_bench_m9_partitioned_select_wins_big_at_high_diversity(tiers):
    part, naive = tiers
    speedup = naive[128]["select_us"] / part[128]["select_us"]
    assert speedup >= 3.0, (
        f"partitioned select only {speedup:.2f}x faster than naive "
        f"at 128 labels (need >= 3x)")


def test_bench_m9_partitioned_never_loses(tiers):
    part, naive = tiers
    for k in LABEL_TIERS:
        for op in ("select_us", "count_us", "walk_us"):
            assert part[k][op] <= naive[k][op] * 1.5, (
                f"partitioned {op} slower than naive at {k} labels")


def test_bench_m9_partitions_really_skipped(tiers):
    part, __ = tiers
    stats = part[128]["db_stats"]
    assert stats["partitioned"] is True
    assert stats["partitions_skipped"] > stats["partitions_visible"]
    assert stats["rows_skipped"] > 0
    assert part[128]["fs_stats"]["subtrees_pruned"] > 0


def test_bench_m9_engines_agree_on_results():
    __, store_p, fs_p, viewer_p = build_data_plane(500, 16, True)
    __, store_n, fs_n, viewer_n = build_data_plane(500, 16, False)
    assert store_p.select(viewer_p, "items", where={"k": 3}) == \
        store_n.select(viewer_n, "items", where={"k": 3})
    assert store_p.count(viewer_p, "items") == \
        store_n.count(viewer_n, "items")
    assert [p for p, _ in fs_p.walk(viewer_p)] == \
        [p for p, _ in fs_n.walk(viewer_n)]


def test_bench_m9_select_latency(benchmark):
    """pytest-benchmark point for the 128-label partitioned select."""
    __, store, __, viewer = build_data_plane(N_ROWS, 128, True)
    # the viewer's visible rows are multiples of 128, so k = i%16 = 0
    rows = benchmark(store.select, viewer, "items", where={"k": 0})
    assert rows
