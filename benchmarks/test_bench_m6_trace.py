"""M6 — macro throughput: a Zipfian request trace over a loaded world.

A realistic request mix (profile views, photo views, blog reads, feed
renders) with Zipf-skewed target popularity, served end to end through
the full pipeline.  Reports requests served, authorization refusals
(expected: exactly the stranger fraction), and requests/second — the
simulator's capacity figure for capacity planning of the experiments
themselves.
"""

import pytest

from repro import W5System
from repro.workloads import make_social_world, make_trace

from .conftest import print_table

N_USERS = 12
TRACE_LEN = 150


@pytest.fixture(scope="module")
def loaded_world():
    world = make_social_world(n_users=N_USERS, photos_per_user=2,
                              posts_per_user=2, seed=31)
    w5 = W5System()
    w5.load_world(world)
    trace = make_trace(world.users, TRACE_LEN, seed=5)
    return world, w5, trace


def serve_trace(w5, world, trace):
    served = refused = 0
    for request in trace:
        client = w5.client(request.viewer)
        path, params = request.path_and_params()
        r = client.get(path, **params)
        if r.ok:
            served += 1
        elif r.status == 403:
            refused += 1
    return served, refused


def test_bench_m6_request_trace(benchmark, loaded_world):
    world, w5, trace = loaded_world
    served, refused = benchmark.pedantic(
        serve_trace, args=(w5, world, trace), rounds=3, iterations=1)

    assert served + refused == TRACE_LEN

    # every refusal must be a genuine stranger access, never a friend
    expected_refusals = sum(
        1 for r in trace
        if r.kind != "feed" and r.viewer != r.target
        and not world.are_friends(r.viewer, r.target))
    assert refused <= expected_refusals + TRACE_LEN // 10  # feed mixes

    print_table(
        f"M6: Zipf trace, {TRACE_LEN} requests over {N_USERS} users",
        ["metric", "value"],
        [["requests served (200)", served],
         ["requests refused (403)", refused],
         ["stranger requests in trace", expected_refusals],
         ["unauthorized bytes delivered", 0]])
