"""C1 — §1/§3.1: the platform blocks theft by untrusted applications.

Three thief variants run against a population on W5 and on the
Facebook-style third-party baseline.  The table counts secret records
that reached each adversary-controlled endpoint.
"""

from repro import W5System
from repro.baselines import DeveloperServer, ThirdPartyPlatform
from repro.workloads import make_social_world

from .conftest import print_table

N_USERS = 8
SECRET_PREFIX = "DIARY-OF-"


def run_theft_campaign():
    """Run every thief variant on both platforms; return leak counts."""
    world = make_social_world(n_users=N_USERS, seed=11)

    # --- W5 ---
    w5 = W5System(with_adversaries=True)
    for user in world.users:
        w5.add_user(user, profile=world.profiles[user])
        w5.provider.store_user_data(user, "diary.txt",
                                    SECRET_PREFIX + user)
        # every victim falls for the thief apps (worst case)
        for app in ("data-thief", "exfil-writer", "confederate"):
            w5.provider.enable_app(user, app)
    mallory = w5.add_user("mallory")
    w5_leaks = {"direct": 0, "public-drop": 0, "colluding-pair": 0}
    for user in world.users:
        mallory.get("/app/data-thief/go", victim=user)
        if mallory.ever_received(SECRET_PREFIX + user):
            w5_leaks["direct"] += 1
        mallory.get("/app/exfil-writer/go", victim=user)
        mallory.get("/app/confederate/go", victim=user)
        if mallory.ever_received(SECRET_PREFIX + user):
            w5_leaks["colluding-pair"] += 1

    # --- status quo (third-party platform) ---
    platform = ThirdPartyPlatform()
    thief_server = DeveloperServer("mallory", render=lambda p: "<page>")
    platform.register_app("data-thief", thief_server)
    for user in world.users:
        platform.signup(user, {"diary": SECRET_PREFIX + user})
        platform.install_app(user, "data-thief")
        platform.use_app(user, "data-thief")
    sq_leaks = sum(1 for user in world.users
                   if thief_server.saw_value(SECRET_PREFIX + user))

    return w5_leaks, sq_leaks


def test_bench_c1_theft(benchmark):
    w5_leaks, sq_leaks = benchmark(run_theft_campaign)

    assert sum(w5_leaks.values()) == 0      # W5 blocks every variant
    assert sq_leaks == N_USERS              # status quo leaks everyone

    print_table(
        "C1: records leaked to the adversary (victims fully opted in)",
        ["attack", "status quo", "W5"],
        [["direct export", sq_leaks, w5_leaks["direct"]],
         ["write to public file", "n/a (trivial)", w5_leaks["public-drop"]],
         ["colluding pair", "n/a (trivial)", w5_leaks["colluding-pair"]]])
