"""M15 — incremental federation: delta sync vs. naive, fabric routing.

Asserts the ROADMAP item-2 claims: ≥5× at the guard tier (1,000 files
/ 1% dirty), ~flat delta cost across corpus sizes, growing naive
cost, and flat routed-read latency as the provider fleet scales.
"""

from .conftest import print_table
from .m15_federation import (M15_MIN_SPEEDUP, run_latency_curve,
                             run_sync_scaling)

#: Delta floors across a 16× corpus spread may wobble with allocator
#: luck but must stay far from the corpus ratio — 3× is "flat" in the
#: sense that matters (the naive engine spans ~the corpus ratio).
MAX_DELTA_SPREAD = 3.0
#: Routed reads across fleet sizes must not grow with N; 3× covers
#: cache-locality noise between a 2- and a 256-provider process.
MAX_LATENCY_SPREAD = 3.0


def test_bench_m15_sync_scaling(benchmark):
    result = benchmark.pedantic(run_sync_scaling, rounds=1, iterations=1)

    assert result["speedup"] >= M15_MIN_SPEEDUP, (
        f"delta sync only {result['speedup']}x over naive at the guard "
        f"tier — the O(dirty) path has regressed")
    assert result["delta_flatness"] <= MAX_DELTA_SPREAD, (
        f"delta floors spread {result['delta_flatness']}x across corpus "
        f"tiers — sync cost is no longer ~flat in corpus size")
    assert not result["regression"]

    print_table(
        f"M15: one sync round, {result['n_dirty']} dirty files",
        ["corpus files", "engine", "floor ms", "mean ms"],
        [[r["n_files"], r["engine"], r["floor_ms"], r["mean_ms"]]
         for r in result["rows"]])
    print_table(
        "M15: the guard",
        ["guard tier", "speedup", "bar", "delta spread", "naive spread"],
        [[result["guard_tier"], f"{result['speedup']}x",
          f">= {result['min_speedup']}x",
          f"{result['delta_flatness']}x", f"{result['naive_growth']}x"]])


def test_bench_m15_fabric_latency(benchmark):
    curve = benchmark.pedantic(run_latency_curve, rounds=1, iterations=1)

    latencies = [row["read_latency_us"] for row in curve]
    spread = max(latencies) / min(latencies)
    assert spread <= MAX_LATENCY_SPREAD, (
        f"routed-read latency spread {spread:.2f}x across fleet sizes — "
        f"directory lookup is no longer O(1) in provider count")
    assert curve[-1]["providers"] == 256
    assert all(row["distinct_homes"] >= 2 for row in curve)

    print_table(
        "M15: cross-provider reads through the consistent-hash directory",
        ["providers", "distinct homes", "build s", "read latency us"],
        [[row["providers"], row["distinct_homes"], row["build_s"],
          row["read_latency_us"]] for row in curve])
