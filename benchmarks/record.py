"""Record the perf trajectory: quick benchmark runs to JSON.

Writes ``BENCH_M1.json`` (label-operation microbenchmarks, cached and
uncached), ``BENCH_M2.json`` (end-to-end request path),
``BENCH_M8.json`` (request-plane scaling vs. user count),
``BENCH_M9.json`` (data-plane scaling vs. distinct labels),
``BENCH_M10.json`` (incremental durability vs. full snapshots),
``BENCH_M11.json`` (request-tracing overhead), ``BENCH_M12.json``
(compiled request plans vs. the interpreted decision path),
``BENCH_M13.json`` (the sharded request plane: 1-shard parity and
multi-shard scaling), ``BENCH_M14.json`` (the squeezed mandated
pipeline vs. its naive twins), ``BENCH_M15.json`` (journal-cursor
delta federation sync vs. the naive reconciler, plus fabric routing
latency across provider fleets) and ``BENCH_M16.json`` (fleet
observability: disabled-path parity and the stitched-tracing
premium) so CI can
archive one number series per commit — the repo's before/after
record for the fast-path label engine, the O(1) request plane, the
label-partitioned storage engine, the write-ahead journal, the span
tracer and planned dispatch lives in these files and in
EXPERIMENTS.md.

``BENCH_M8`` through ``BENCH_M15`` double as regression guards: the
run **fails** (exit code 1) if per-request latency at 1,000 users
exceeds 3x the 10-user latency with the fast request plane on, if
the partitioned select beats the naive engine by less than 3x on a
10k-row / 128-label table, if the incremental snapshot beats the
full snapshot by less than 3x at 1,000 users with 1% dirty state, if
enabled tracing costs more than 1.4x on the M8 mix, or if the
compiled decision read exceeds its 10us budget or beats the
interpretation it replaced by less than 3x, or if shard scaling
misses its bar (3x aggregate throughput at 4 shards on a 4+-core
POSIX box; the graceful-degradation floor elsewhere), or if the M14
fast pipeline beats its naive twins by less than 1.2x end to end,
or if delta federation sync beats the naive content reconciler by
less than 5x at 1,000 files with a 1% dirty set, or if the fleet
observability plane costs more than 1.05x disabled or 15us per
request armed.

Usage::

    PYTHONPATH=src python benchmarks/record.py [--out DIR] [--repeat N]

Quick mode by design: each measurement is a tight loop around the hot
operation, reported as ops/sec (best of ``--repeat`` runs, to shed
scheduler noise).  For statistically careful numbers use
``pytest benchmarks/ --benchmark-only``; for a trajectory a cheap,
stable point per commit beats an expensive one nobody records.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path


def _ops_per_sec(fn, *, n: int, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return n / best


def bench_m1(repeat: int) -> dict:
    """Label-op throughput: flow checks, join, label change — each
    uncached (the pure algebra) and cached (the memoized fast path)."""
    from repro.labels import (CapabilitySet, FlowCache, Label, TagRegistry,
                              can_flow, label_change_allowed, minus, plus)

    reg = TagRegistry(namespace="bench-m1")
    tags = [reg.create(purpose=f"t{i}") for i in range(256)]
    results: dict[str, dict] = {}

    for size in (1, 8, 64):
        a = Label(tags[:size])
        b = Label(tags[: size + size // 2 + 1])
        caps = CapabilitySet(
            [plus(t) for t in tags[: size + size // 2 + 1]]
            + [minus(t) for t in tags[: size // 2 + 1]])
        empty = Label.EMPTY
        cache = FlowCache()
        cache.can_flow(a, empty, b, empty, caps, caps)  # warm

        n = 5_000 if size >= 64 else 20_000
        uncached = _ops_per_sec(
            lambda: can_flow(a, empty, b, empty, caps, caps),
            n=n, repeat=repeat)
        cached = _ops_per_sec(
            lambda: cache.can_flow(a, empty, b, empty, caps, caps),
            n=n, repeat=repeat)
        join = _ops_per_sec(lambda: a | b, n=n, repeat=repeat)
        change = _ops_per_sec(
            lambda: label_change_allowed(a, b, caps), n=n, repeat=repeat)
        results[f"size_{size}"] = {
            "can_flow_uncached_ops": round(uncached),
            "can_flow_cached_ops": round(cached),
            "cache_speedup": round(cached / uncached, 2),
            "join_ops": round(join),
            "label_change_ops": round(change),
        }
    return results


def bench_m2(repeat: int) -> dict:
    """End-to-end request latency through the full W5 pipeline."""
    from repro import W5System

    w5 = W5System()
    bob = w5.add_user("bob", apps=["blog"])
    bob.get("/app/blog/post", title="t0", body="hello world")
    assert bob.get("/app/blog/read", title="t0").ok

    n = 300
    request = _ops_per_sec(
        lambda: bob.get("/app/blog/read", title="t0"), n=n, repeat=repeat)
    static = _ops_per_sec(lambda: bob.get("/"), n=n, repeat=repeat)
    cache_stats = w5.provider.kernel.flow_cache.stats()
    return {
        "w5_request_ops": round(request),
        "static_route_ops": round(static),
        "flow_cache_hit_rate": round(
            w5.provider.kernel.flow_cache.hit_rate(), 4),
        "flow_cache_hits": cache_stats["hit_total"],
        "flow_cache_misses": cache_stats["miss_total"],
    }


#: The M8 regression bound: 1,000-user latency vs. 10-user latency.
M8_MAX_RATIO = 3.0


def bench_m8(repeat: int) -> dict:
    """Per-request latency vs. deployment size, fast plane on and off.

    The interesting number is the growth ratio: flat (~1x) with the
    capability index + authority cache + pool, linear without.
    """
    from m8_scaling import run_tier

    results: dict[str, dict] = {}
    for n_users in (10, 100, 1_000, 5_000):
        tier = run_tier(n_users, fast=True, n=40, repeat=repeat)
        results[f"fast_{n_users}"] = {
            "latency_us": tier["latency_us"],
            "throughput_rps": tier["throughput_rps"],
            "launch_cap_hits": tier["launch_caps"]["hits"],
            "authority_hits": tier["authority"]["hits"],
            "audit_dropped": tier["audit_dropped"],
        }
    for n_users in (10, 100, 1_000):
        tier = run_tier(n_users, fast=False, n=20, repeat=repeat)
        results[f"slow_{n_users}"] = {
            "latency_us": tier["latency_us"],
            "throughput_rps": tier["throughput_rps"],
        }
    ratio = (results["fast_1000"]["latency_us"]
             / results["fast_10"]["latency_us"])
    results["scaling"] = {
        "fast_1000_vs_10_ratio": round(ratio, 3),
        "slow_1000_vs_10_ratio": round(
            results["slow_1000"]["latency_us"]
            / results["slow_10"]["latency_us"], 3),
        "max_ratio": M8_MAX_RATIO,
        "regression": ratio > M8_MAX_RATIO,
    }
    return results


#: The M9 regression bound: naive vs partitioned select at 128 labels.
M9_MIN_SPEEDUP = 3.0


def bench_m9(repeat: int) -> dict:
    """Label-filtered query cost vs. distinct labels, both engines.

    The interesting number is the select speedup at high label
    diversity: the partitioned engine resolves visibility per
    partition, so a 128-label table costs ~1/128th of the naive
    per-row scan for a single-contract viewer.
    """
    from m9_partitions import run_tier

    results: dict[str, dict] = {}
    for n_labels in (2, 16, 128):
        part = run_tier(10_000, n_labels, partitioned=True, n=10,
                        repeat=repeat)
        naive = run_tier(10_000, n_labels, partitioned=False, n=4,
                         repeat=repeat)
        results[f"labels_{n_labels}"] = {
            "partitioned_select_us": part["select_us"],
            "naive_select_us": naive["select_us"],
            "select_speedup": round(
                naive["select_us"] / part["select_us"], 2),
            "partitioned_update_us": part["update_us"],
            "naive_update_us": naive["update_us"],
            "partitioned_walk_us": part["walk_us"],
            "naive_walk_us": naive["walk_us"],
            "partitions_skipped": part["db_stats"]["partitions_skipped"],
            "subtrees_pruned": part["fs_stats"]["subtrees_pruned"],
        }
    speedup = results["labels_128"]["select_speedup"]
    results["scaling"] = {
        "select_speedup_at_128": speedup,
        "min_speedup": M9_MIN_SPEEDUP,
        "regression": speedup < M9_MIN_SPEEDUP,
    }
    return results


#: The M11 regression bound: traced vs disabled on the M8 mix.  The
#: tracing premium is fixed µs, so the ratio rose when M14 squeezed
#: the untraced mix (see m11_tracing.py for the recalibration).
M11_MAX_OVERHEAD = 1.40


def bench_m11(repeat: int) -> dict:
    """Request-tracing cost: traced vs. disabled on the M8 mix.

    The interesting number is the enabled ratio: the always-on tier
    (root span, exact request histograms, audit correlation, flight
    recorder) plus the 1-in-16-sampled detail tree costs a fixed ~7-14us
    per request, so the ratio rides on how fast the underlying request
    already is (the bound moved 1.2 -> 1.4 when M14 squeezed the
    untraced mix; see m11_tracing.py).
    """
    from m11_tracing import run_overhead

    del repeat  # the interleaved-slice protocol fixes its own reps
    overhead = run_overhead(n_users=100)
    ratio = overhead["enabled_ratio"]
    return {
        "baseline": overhead["baseline"],
        "traced": overhead["traced"],
        "disabled_noise_ratio": overhead["disabled_noise_ratio"],
        "enabled_ratio": ratio,
        "scaling": {
            "enabled_ratio": ratio,
            "max_overhead": M11_MAX_OVERHEAD,
            "regression": ratio > M11_MAX_OVERHEAD,
        },
    }


#: The M12 regression bound, on the cached-read path: the compiled
#: decision read must be at least 3x cheaper than the per-request
#: interpretation it replaced (the unplanned-minus-planned gap).
M12_MIN_DECISION_SPEEDUP = 3.0


def bench_m12(repeat: int) -> dict:
    """Planned dispatch: compiled decision reads vs. interpretation.

    The interesting number is the cached read — the compiled decision
    path on a plan hit (lookup + pool key + partition verdicts +
    egress verdict), ~1-3us against the ~15us of interpretation the
    unplanned plane spends re-deriving the same answers per request.
    The guard is on that ratio: if the cached read path bloats, the
    speedup collapses long before the end-to-end numbers notice.
    """
    from m12_plans import M12_MAX_CACHED_READ_US, run_comparison

    del repeat  # the interleaved-slice protocol fixes its own reps
    comparison = run_comparison(n_users=100)
    speedup = comparison["decision_speedup"]
    return {
        "unplanned": comparison["unplanned"],
        "planned": comparison["planned"],
        "cached_read_us": comparison["cached_read_us"],
        "interpretation_removed_us":
            comparison["interpretation_removed_us"],
        "unplanned_noise_ratio": comparison["unplanned_noise_ratio"],
        "planned_ratio": comparison["planned_ratio"],
        "scaling": {
            "cached_read_us": comparison["cached_read_us"],
            "max_cached_read_us": M12_MAX_CACHED_READ_US,
            "decision_speedup": speedup,
            "min_decision_speedup": M12_MIN_DECISION_SPEEDUP,
            "regression": (
                speedup < M12_MIN_DECISION_SPEEDUP
                or comparison["cached_read_us"]
                > M12_MAX_CACHED_READ_US),
        },
    }


def bench_m13(repeat: int) -> dict:
    """The sharded request plane: 1-shard parity, multi-shard scaling.

    Two numbers.  Parity: a 1-shard ShardedProvider on the batched
    shard-local read mix vs. the unsharded fast() plane — the
    compiled-in router must cost ~nothing when sharding is off.
    Scaling: aggregate throughput at 1/2/4 shards under the fork
    engine (the only one that escapes the GIL).  The guard is
    conditional on the box: the 3x bar needs 4+ cores and os.fork;
    single-core runners get the graceful-degradation floor, and the
    payload records which bar was in force.
    """
    from m13_shards import (M13_MAX_ONE_SHARD_RATIO, run_parity,
                            run_scaling, scaling_guard)

    parity = run_parity()
    scaling = run_scaling(repeat=repeat)
    guard = scaling_guard(scaling)
    guard["one_shard_ratio"] = parity["one_shard_ratio"]
    guard["max_one_shard_ratio"] = M13_MAX_ONE_SHARD_RATIO
    guard["regression"] = (
        guard["regression"]
        or parity["one_shard_ratio"] > M13_MAX_ONE_SHARD_RATIO)
    return {"parity": parity, **scaling, "scaling": guard}


def bench_m14(repeat: int) -> dict:
    """The squeezed mandated pipeline: fast vs. naive twins, M8 mix.

    The interesting number is the end-to-end speedup with request
    plans on *both* sides: the four M14 shortcuts (lazy audit,
    compiled label transitions, batched charges, verdict slots)
    against the naive implementations they replaced, byte-identical
    observables pinned by the differential suite.  The guard is the
    1.2x bar plus the M11-style naive-noise bound: if two identical
    naive builds stop agreeing, the speedup number means nothing.
    """
    from m14_pipeline import (M14_MAX_NAIVE_NOISE, M14_MIN_SPEEDUP,
                              run_comparison)

    del repeat  # the interleaved-slice protocol fixes its own reps
    comparison = run_comparison(n_users=100)
    speedup = comparison["speedup"]
    noise = comparison["naive_noise_ratio"]
    return {
        "naive": comparison["naive"],
        "fast": comparison["fast"],
        "pipeline_removed_us": comparison["pipeline_removed_us"],
        "naive_noise_ratio": noise,
        "speedup": speedup,
        "scaling": {
            "speedup": speedup,
            "min_speedup": M14_MIN_SPEEDUP,
            "naive_noise_ratio": noise,
            "max_naive_noise": M14_MAX_NAIVE_NOISE,
            "regression": (speedup < M14_MIN_SPEEDUP
                           or noise > M14_MAX_NAIVE_NOISE),
        },
    }


def bench_m15(repeat: int) -> dict:
    """Incremental federation: delta sync vs. naive, fabric routing.

    The interesting number is the guard-tier speedup: one sync round
    at 1,000 mirrored files with 10 dirty.  The naive reconciler
    re-reads the corpus on both sides; the delta engine tails the
    journal from the link's cursor, so its round cost tracks the
    dirty set.  The payload also records the flatness of the delta
    curve across corpus tiers and the routed-read latency across
    fabric sizes up to 256 providers.
    """
    from m15_federation import run_latency_curve, run_sync_scaling

    scaling = run_sync_scaling(reps=max(repeat, 3))
    latency = run_latency_curve()
    return {
        "sync": {k: v for k, v in scaling.items()
                 if k not in ("regression", "min_speedup")},
        "fabric_latency": latency,
        "scaling": {
            "speedup": scaling["speedup"],
            "min_speedup": scaling["min_speedup"],
            "delta_flatness": scaling["delta_flatness"],
            "naive_growth": scaling["naive_growth"],
            "regression": scaling["regression"],
        },
    }


def bench_m16(repeat: int) -> dict:
    """Fleet observability: the cost of cross-shard trace stitching.

    The interesting numbers are the two M16 invariants, both
    same-build differentials: the 2-shard fleet plane with tracing
    *off*, routed vs. the identical requests dispatched directly to
    its M14-fast shard providers (must be ~1.0x — routing plus one
    attribute load of M16 plumbing), and the per-request premium of
    stitched fleet tracing over shard-local tracing on the same
    traced builds (context export + remote capture + graft merge, an
    absolute microsecond budget).
    """
    from m16_fleet_obs import run_fleet_obs

    result = run_fleet_obs(reps=max(repeat * 4, 12))
    return {
        "fleet": {k: v for k, v in result.items() if k != "regression"},
        "scaling": {
            "disabled_ratio": result["disabled"]["ratio"],
            "max_disabled_ratio": result["disabled"]["max_ratio"],
            "armed_premium_us": result["armed"]["premium_us"],
            "max_armed_premium_us": result["armed"]["max_premium_us"],
            "regression": result["regression"],
        },
    }


#: The M10 regression bound: full vs incremental snapshot at 1k users.
M10_MIN_SPEEDUP = 3.0


def bench_m10(repeat: int) -> dict:
    """Durability cost: incremental vs. full snapshots, journal
    overhead, and recovery-by-replay timing.

    The interesting number is the snapshot speedup at 1,000 users with
    1% dirty state: the journal makes the snapshot O(dirty), so the
    full/incremental gap widens linearly with deployment size.
    """
    from m10_journal import mutation_overhead, run_tier

    results: dict[str, dict] = {}
    for n_users in (100, 1_000):
        tier = run_tier(n_users, dirty_frac=0.01, repeat=repeat)
        results[f"users_{n_users}"] = {
            "full_ms": tier["full_ms"],
            "incremental_ms": tier["incremental_ms"],
            "snapshot_speedup": tier["snapshot_speedup"],
            "full_bytes": tier["full_bytes"],
            "delta_bytes": tier["delta_bytes"],
            "recover_ms": tier["recover_ms"],
            "records_replayed": tier["records_replayed"],
        }
    results["overhead"] = mutation_overhead(repeat=repeat)
    speedup = results["users_1000"]["snapshot_speedup"]
    results["scaling"] = {
        "snapshot_speedup_at_1000": speedup,
        "min_speedup": M10_MIN_SPEEDUP,
        "regression": speedup < M10_MIN_SPEEDUP,
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=".", type=Path,
                        help="directory for BENCH_*.json (default: cwd)")
    parser.add_argument("--repeat", default=3, type=int,
                        help="runs per measurement; best is kept")
    args = parser.parse_args(argv)
    args.out.mkdir(parents=True, exist_ok=True)

    meta = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "schema": 1,
    }
    failed = False
    for name, fn in (("M1", bench_m1), ("M2", bench_m2), ("M8", bench_m8),
                     ("M9", bench_m9), ("M10", bench_m10),
                     ("M11", bench_m11), ("M12", bench_m12),
                     ("M13", bench_m13), ("M14", bench_m14),
                     ("M15", bench_m15), ("M16", bench_m16)):
        payload = {"experiment": name, **meta,
                   "results": fn(args.repeat)}
        path = args.out / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
        print(json.dumps(payload["results"], indent=2))
        if name == "M8" and payload["results"]["scaling"]["regression"]:
            ratio = payload["results"]["scaling"]["fast_1000_vs_10_ratio"]
            print(f"M8 REGRESSION: 1,000-user latency is {ratio}x the "
                  f"10-user latency (bound: {M8_MAX_RATIO}x)")
            failed = True
        if name == "M9" and payload["results"]["scaling"]["regression"]:
            speedup = payload["results"]["scaling"]["select_speedup_at_128"]
            print(f"M9 REGRESSION: partitioned select only {speedup}x "
                  f"the naive engine at 128 labels "
                  f"(bound: {M9_MIN_SPEEDUP}x)")
            failed = True
        if name == "M10" and payload["results"]["scaling"]["regression"]:
            speedup = payload["results"]["scaling"][
                "snapshot_speedup_at_1000"]
            print(f"M10 REGRESSION: incremental snapshot only {speedup}x "
                  f"faster than full at 1,000 users / 1% dirty "
                  f"(bound: {M10_MIN_SPEEDUP}x)")
            failed = True
        if name == "M11" and payload["results"]["scaling"]["regression"]:
            ratio = payload["results"]["scaling"]["enabled_ratio"]
            print(f"M11 REGRESSION: enabled tracing costs {ratio}x on "
                  f"the M8 mix (bound: {M11_MAX_OVERHEAD}x)")
            failed = True
        if name == "M12" and payload["results"]["scaling"]["regression"]:
            scaling = payload["results"]["scaling"]
            print(f"M12 REGRESSION: cached decision read costs "
                  f"{scaling['cached_read_us']}us "
                  f"(bound: {scaling['max_cached_read_us']}us) at "
                  f"{scaling['decision_speedup']}x the interpretation "
                  f"it replaces "
                  f"(bound: {M12_MIN_DECISION_SPEEDUP}x minimum)")
            failed = True
        if name == "M13" and payload["results"]["scaling"]["regression"]:
            scaling = payload["results"]["scaling"]
            print(f"M13 REGRESSION: 1-shard parity at "
                  f"{scaling['one_shard_ratio']}x "
                  f"(bound: {scaling['max_one_shard_ratio']}x) or "
                  f"shard scaling at {scaling['speedup_max_vs_1']}x "
                  f"(bound: {scaling['min_speedup']}x, "
                  f"{'multicore' if scaling['multicore_bar'] else 'degraded'}"
                  f" bar)")
            failed = True
        if name == "M14" and payload["results"]["scaling"]["regression"]:
            scaling = payload["results"]["scaling"]
            print(f"M14 REGRESSION: fast pipeline only "
                  f"{scaling['speedup']}x the naive pipeline "
                  f"(bound: {scaling['min_speedup']}x minimum) with "
                  f"naive-build noise at {scaling['naive_noise_ratio']}x "
                  f"(bound: {scaling['max_naive_noise']}x)")
            failed = True
        if name == "M15" and payload["results"]["scaling"]["regression"]:
            scaling = payload["results"]["scaling"]
            print(f"M15 REGRESSION: delta federation sync only "
                  f"{scaling['speedup']}x the naive reconciler at the "
                  f"guard tier (bound: {scaling['min_speedup']}x minimum)")
            failed = True
        if name == "M16" and payload["results"]["scaling"]["regression"]:
            scaling = payload["results"]["scaling"]
            print(f"M16 REGRESSION: disabled fleet plane at "
                  f"{scaling['disabled_ratio']}x its direct-dispatch "
                  f"baseline "
                  f"(bound: {scaling['max_disabled_ratio']}x) or "
                  f"stitched-tracing premium at "
                  f"{scaling['armed_premium_us']}us per request "
                  f"(bound: {scaling['max_armed_premium_us']}us)")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
