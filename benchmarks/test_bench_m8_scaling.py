"""M8 — request-plane scaling: per-request cost vs. deployment size.

The ROADMAP north star is heavy traffic from millions of users; the
mechanism claim of this milestone is that per-request work is
independent of how many accounts exist.  We measure the same fully
labeled read at 10 / 100 / 1,000 / 5,000 users with the O(1) request
plane on, and at 10 / 100 / 1,000 with it off (the seed behavior:
``launch_caps`` scans every account and ``authority_for`` every grant,
per request), and assert the shapes:

* **fast**: the cost curve is flat — 1,000 users costs ≤1.5× 10 users;
* **slow**: the cost clearly grows with users — the scan is real.
"""

import pytest

from .conftest import print_table
from .m8_scaling import run_tier

FAST_TIERS = (10, 100, 1_000, 5_000)
SLOW_TIERS = (10, 100, 1_000)


@pytest.fixture(scope="module")
def tiers():
    fast = {n: run_tier(n, fast=True) for n in FAST_TIERS}
    slow = {n: run_tier(n, fast=False, n=30) for n in SLOW_TIERS}
    print_table(
        "M8 request-plane scaling (per-request latency)",
        ["users", "fast µs", "fast rps", "slow µs", "slow rps"],
        [[n,
          fast[n]["latency_us"], fast[n]["throughput_rps"],
          slow[n]["latency_us"] if n in slow else "-",
          slow[n]["throughput_rps"] if n in slow else "-"]
         for n in FAST_TIERS])
    return fast, slow


def test_bench_m8_fast_plane_is_flat(tiers):
    fast, __ = tiers
    lat10 = fast[10]["latency_us"]
    lat1000 = fast[1_000]["latency_us"]
    assert lat1000 <= 1.5 * lat10, (
        f"per-request latency grew {lat1000 / lat10:.2f}x "
        f"from 10 to 1,000 users with the fast plane on")
    # the widest tier stays in the same ballpark too
    assert fast[5_000]["latency_us"] <= 2.0 * lat10


def test_bench_m8_slow_plane_grows(tiers):
    """The baseline really is O(users) — otherwise M8 proves nothing."""
    __, slow = tiers
    assert slow[1_000]["latency_us"] >= 3.0 * slow[10]["latency_us"]


def test_bench_m8_caches_are_working(tiers):
    fast, slow = tiers
    big = fast[1_000]
    assert big["launch_caps"]["hits"] > 0
    assert big["authority"]["hits"] > 0
    # with the plane off, nothing is served from memo
    assert slow[1_000]["launch_caps"]["hits"] == 0
    assert slow[1_000]["authority"]["hits"] == 0


def test_bench_m8_audit_ring_bounds_memory(tiers):
    fast, __ = tiers
    big = fast[5_000]
    # 5,000 signups + the measurement loops overflow a 20k ring
    assert big["audit_dropped"] > 0


def test_bench_m8_latency(benchmark):
    """pytest-benchmark point for the 1,000-user fast tier."""
    from .m8_scaling import build_deployment
    __, driver = build_deployment(1_000, fast=True)
    resp = benchmark(driver.get, "/app/blog/read", title="t0")
    assert resp.ok
