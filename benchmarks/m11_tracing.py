"""M11 shared harness: request-tracing overhead on the M8 mix.

Tracing only earns its place if the *disabled* path costs nothing and
the *enabled* path costs little.  This harness reuses the M8
deployment and request mix (a fully labeled blog read: authenticate →
pool checkout → labeled row read → export-authority check → egress)
and measures three configurations:

* ``baseline`` — ``tracing=False``, the null tracer wired in: every
  instrumentation site is either guarded by one ``tracer.enabled`` /
  ``tracer._fold`` attribute load or enters the shared
  allocation-free null span.  Two independent builds of this
  configuration bound the noise floor;
* ``traced`` — ``tracing=True``: a root span, exact request-latency
  histograms, audit correlation and the flight recorder on every
  request, plus the fully annotated span tree on 1-in-16 sampled
  traces.

Used by both ``test_bench_m11_tracing.py`` (assertions + table) and
``record.py`` (BENCH_M11.json + the regression guard), so the two
always measure the same thing.

Plain imports only: ``record.py`` runs as a script, so this module
must work without the package context (hence the dual import of the
M8 harness).
"""

from __future__ import annotations

from typing import Any

try:  # package context (pytest)
    from .m8_scaling import build_deployment, measure_request_seconds
except ImportError:  # script context (record.py)
    from m8_scaling import build_deployment, measure_request_seconds

#: Enabled-tracing budget on the M8 mix (ratio vs. disabled).
#: Measured cost is a fixed ~7-14us per traced request — Trace + root
#: span + exact request histogram + recorder offer + audit stamping,
#: plus the fully annotated tree amortized over its 1-in-16 sampling;
#: the upper end is post-M14, where stamping routes audit records
#: through the general append instead of the inlined lazy fast path.
#: The ratio rides on how fast the underlying request already is:
#: 1.06-1.17x on the pre-M14 ~70us read, 1.25-1.29x now that M14
#: squeezed the untraced mix to ~55us under the same fixed premium
#: (traced absolute latency did not get worse).  1.40 keeps the
#: pre-M14 headroom for build-to-build layout luck while still
#: catching real regressions: un-sampling the detail tier, for
#: example, measures 1.5x+ on the squeezed base.
M11_MAX_ENABLED_OVERHEAD = 1.40
#: Disabled-tracing budget: two identical tracing=False builds must
#: reproduce each other's floor.  Identical *code* already shows a
#: 1.00-1.06x floor spread between builds on the dev container (dict /
#: heap layout luck — a fixed ~1-3us delta, a larger *ratio* since
#: M14 squeezed the floor itself, and wider still in the once-through
#: CI suite where earlier suites' deployments fragment the heap), so
#: the budget sits just above that; the ablated cost of the
#: instrumentation sites themselves is ~0.1us per request (~0.2%),
#: and a disabled path that started doing real per-request work would
#: land at 1.12x+.
M11_MAX_DISABLED_NOISE = 1.09


def run_overhead(n_users: int = 100, n: int = 150,
                 reps: int = 20) -> dict[str, Any]:
    """The M11 headline: enabled and disabled cost on the M8 mix.

    The container this runs in drifts by 10%+ over seconds (noisy
    neighbors, frequency steps), which dwarfs the effect being
    measured.  So both deployments are built up front and measurement
    alternates between them in ~10ms slices (one ``n``-request loop
    each), ``reps`` times; each mode's latency is the *minimum* slice
    — its no-interruption floor — and drift lands on both modes alike
    instead of masquerading as tracing overhead.

    Two deployments are built *per mode*, in alternating order
    (off, on, on, off): heap layout degrades slightly as a process
    allocates, so always building the traced deployment second showed
    up as a systematic ~3% penalty against it.  Each mode's floor is
    the minimum over both of its builds.

    ``disabled_noise_ratio`` compares the floors of the two
    independently built ``tracing=False`` deployments (slower / faster,
    so always >= 1): with tracing disabled the builds are
    interchangeable, so their floors must agree.  Floor-vs-floor is
    deliberate — any *single* build's slice-to-slice spread mixes in
    machine drift, which this protocol is designed to cancel, not to
    measure.  ``enabled_ratio`` is the traced floor over the disabled
    floor (each the min across its mode's builds).
    """
    w5_off, drv_off = build_deployment(n_users, fast=True, tracing=False)
    w5_on, drv_on = build_deployment(n_users, fast=True, tracing=True)
    w5_on2, drv_on2 = build_deployment(n_users, fast=True, tracing=True)
    w5_off2, drv_off2 = build_deployment(n_users, fast=True,
                                         tracing=False)
    off_drivers = (drv_off, drv_off2)
    on_drivers = (drv_on, drv_on2)
    # discarded warmups: first loops over fresh deployments pay
    # allocator growth and cold caches
    for drv in off_drivers + on_drivers:
        measure_request_seconds(drv, n=n, repeat=2)
    off_by_build: tuple[list[float], list[float]] = ([], [])
    on: list[float] = []
    for _ in range(reps):
        for slices, drv in zip(off_by_build, off_drivers):
            slices.append(measure_request_seconds(drv, n=n, repeat=1))
        for drv in on_drivers:
            on.append(measure_request_seconds(drv, n=n, repeat=1))
    floor_a = min(off_by_build[0])
    floor_b = min(off_by_build[1])
    noise = max(floor_a, floor_b) / min(floor_a, floor_b)
    off = sorted(off_by_build[0] + off_by_build[1])
    on.sort()

    provider = w5_on.provider
    baseline: dict[str, Any] = {
        "users": n_users, "tracing": False,
        "latency_us": round(off[0] * 1e6, 2),
        "best_slices_us": [round(s * 1e6, 2) for s in off[:4]],
        "throughput_rps": round(1.0 / off[0], 1),
    }
    traced: dict[str, Any] = {
        "users": n_users, "tracing": True,
        "latency_us": round(on[0] * 1e6, 2),
        "best_slices_us": [round(s * 1e6, 2) for s in on[:4]],
        "throughput_rps": round(1.0 / on[0], 1),
        "tracer": provider.tracer.stats(),
        "recorder": provider.recorder.stats(),
        "span_names": sorted(provider.tracer.latencies()),
    }
    return {
        "baseline": baseline,
        "traced": traced,
        "disabled_noise_ratio": round(noise, 4),
        "enabled_ratio": round(on[0] / off[0], 4),
        "max_disabled_noise": M11_MAX_DISABLED_NOISE,
        "max_enabled_overhead": M11_MAX_ENABLED_OVERHEAD,
    }
