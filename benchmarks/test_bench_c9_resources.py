"""C9 — §3.5: rogue applications cannot starve the cluster.

Two sub-experiments:

1. **Quotas** — the resource hog under no quota vs a per-app override;
   syscalls it manages to burn, and whether honest requests still run.
2. **Scheduling** — hostile long queries vs honest short ones under
   FIFO and fair-share; the honest app's slowdown factor (the DESIGN.md
   §6 scheduler ablation).
"""

from repro import W5System
from repro.resources import FairShareScheduler, FifoScheduler, Job, slowdown

from .conftest import print_table

HOG_SPINS = 5000
HOG_QUOTA = 100


def run_resource_experiments():
    # -- quota sub-experiment ------------------------------------------
    quota_rows = []
    for config, overrides in (
            ("no quota", None),
            (f"hog quota={HOG_QUOTA}",
             {"app:resource-hog": {"syscalls": HOG_QUOTA}})):
        w5 = W5System(with_adversaries=True, quota_overrides=overrides)
        eve = w5.add_user("eve", apps=["resource-hog"])
        bob = w5.add_user("bob", apps=["blog"])
        r = eve.get("/app/resource-hog/go", spins=HOG_SPINS)
        burned = w5.resources.total("syscalls", name_prefix="app:resource")
        bob.get("/app/blog/post", title="t", body="b")
        honest_ok = bob.get("/app/blog/read", title="t").ok
        quota_rows.append([config, int(burned),
                           "cut off" if r.status != 200 else "completed",
                           "yes" if honest_ok else "no"])

    # -- scheduler sub-experiment ----------------------------------------
    jobs = [Job("hostile-sql", 10_000)] + [Job("honest", 5)] * 4
    solo = {"hostile-sql": 10_000, "honest": 20}
    sched_rows = []
    for sched in (FifoScheduler(), FairShareScheduler()):
        times = sched.completion_times(jobs)
        s = slowdown(times, solo)
        sched_rows.append([sched.name, times["honest"],
                           f"{s['honest']:.2f}x"])
    return quota_rows, sched_rows


def test_bench_c9_resource_policing(benchmark):
    quota_rows, sched_rows = benchmark(run_resource_experiments)

    # without quota the hog burns everything; with quota it is cut off
    assert quota_rows[0][1] >= HOG_SPINS
    assert quota_rows[1][1] <= HOG_QUOTA
    assert quota_rows[1][2] == "cut off"
    # honest apps fine in both configs (simulator is single-threaded;
    # the quota protects capacity, the scheduler protects latency)
    assert all(row[3] == "yes" for row in quota_rows)

    fifo_latency = sched_rows[0][1]
    fair_latency = sched_rows[1][1]
    assert fifo_latency > 100 * fair_latency

    print_table(
        f"C9a: resource-hog (requested {HOG_SPINS} spins) under quotas",
        ["configuration", "syscalls burned", "hog outcome",
         "honest app ok"],
        quota_rows)
    print_table(
        "C9b: honest-query latency under a hostile SQL workload",
        ["scheduler", "honest completion (ticks)", "slowdown"],
        sched_rows)
