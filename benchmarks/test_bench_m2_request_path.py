"""M2 — mechanism cost: the end-to-end request pipeline.

Latency of one full W5 request (authenticate → launch confined app →
labeled reads → export check) against two baselines: the same handler
logic with no platform at all, and a static provider route (pipeline
minus the app launch).  The ratio is the cost of the architecture.
"""

import pytest

from repro import W5System

from .conftest import print_table


@pytest.fixture(scope="module")
def w5_world():
    w5 = W5System()
    bob = w5.add_user("bob", apps=["blog"])
    bob.get("/app/blog/post", title="t0", body="hello world")
    return w5, bob


def test_bench_m2_w5_request(benchmark, w5_world):
    w5, bob = w5_world
    resp = benchmark(bob.get, "/app/blog/read", title="t0")
    assert resp.ok and resp.body["body"] == "hello world"


def test_bench_m2_static_route(benchmark, w5_world):
    """Pipeline minus app launch: the provider's root listing."""
    w5, bob = w5_world
    resp = benchmark(bob.get, "/")
    assert resp.ok


def test_bench_m2_unprotected_handler(benchmark):
    """The same 'blog read' logic with no kernel, labels, or gateway."""
    posts = {("bob", "t0"): "hello world"}

    def bare_read():
        return {"body": posts[("bob", "t0")]}

    result = benchmark(bare_read)
    assert result["body"] == "hello world"
    print_table(
        "M2 note",
        ["row", "meaning"],
        [["w5_request", "full pipeline incl. confinement + export check"],
         ["static_route", "pipeline minus app launch"],
         ["unprotected_handler", "no platform at all (lower bound)"]])
