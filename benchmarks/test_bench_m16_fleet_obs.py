"""M16 — fleet observability: stitched tracing must stay ~free.

Asserts the two M16 cost invariants on the 2-shard serial plane,
both as same-build differentials: the disabled fleet plane adds only
routing-noise over the identical requests dispatched directly to its
M14-fast shard providers, and armed fleet stitching (context
propagation + remote capture + graft merge) costs single-digit
microseconds per cross-shard request on top of shard-local tracing.
"""

from .conftest import print_table
from .m16_fleet_obs import (M16_MAX_ARMED_DELTA_US,
                            M16_MAX_DISABLED_OVERHEAD, run_fleet_obs)


def test_bench_m16_fleet_obs(benchmark):
    result = benchmark.pedantic(run_fleet_obs, rounds=1, iterations=1)
    disabled, armed = result["disabled"], result["armed"]

    assert disabled["ratio"] <= M16_MAX_DISABLED_OVERHEAD, (
        f"fleet plane with tracing off costs {disabled['ratio']}x "
        f"direct dispatch to its own M14-fast shard providers — the "
        f"disabled router path grew real work")
    assert armed["premium_us"] <= M16_MAX_ARMED_DELTA_US, (
        f"fleet stitching premium {armed['premium_us']}us per request "
        f"— capture/graft work crept into the hot path")
    assert armed["sample_grafts"] > 0, (
        "armed run produced no grafted request trees — the premium "
        "measured nothing")
    assert not result["regression"]

    print_table(
        f"M16: fleet observability, {result['shards']}-shard "
        f"{result['engine']} plane, {result['users']} users",
        ["mode", "per-request us", "vs", "bound"],
        [["tracing off (routed)", disabled["fleet_disabled_us"],
          f"{disabled['ratio']}x direct "
          f"({disabled['direct_us']}us)",
          f"<= {disabled['max_ratio']}x"],
         ["tracing on, shard-local", armed["local_traced_us"], "-", "-"],
         ["tracing on, stitched", armed["fleet_traced_us"],
          f"+{armed['premium_us']}us premium",
          f"<= {armed['max_premium_us']}us"]])
