"""M7 — operational cost: provider snapshot/restore.

Times a full snapshot→JSON→restore cycle of a loaded deployment and
verifies the restored provider gives byte-identical answers — the
durability path a real operator would run on every deploy.
"""

import json

import pytest

from repro.apps import STANDARD_CATALOG
from repro.platform import restore_provider, snapshot_provider
from repro.core import W5System
from repro.workloads import make_social_world

from .conftest import print_table

N_USERS = 10


@pytest.fixture(scope="module")
def loaded():
    world = make_social_world(n_users=N_USERS, photos_per_user=2,
                              posts_per_user=2, seed=19)
    w5 = W5System()
    w5.load_world(world)
    return world, w5


def snapshot_roundtrip(provider):
    blob = json.dumps(snapshot_provider(provider))
    restored, report = restore_provider(json.loads(blob),
                                        app_catalog=STANDARD_CATALOG)
    return blob, restored, report


def test_bench_m7_snapshot_restore(benchmark, loaded):
    world, w5 = loaded
    blob, restored, report = benchmark(snapshot_roundtrip, w5.provider)

    assert report["missing_apps"] == []
    # identical answers: the same file reads back on the restored side
    user = world.users[0]
    filename = world.photos[user][0]["filename"]
    original = w5.provider.read_user_data(user, f"photos/{filename}")
    mirrored = restored.read_user_data(user, f"photos/{filename}")
    assert original == mirrored

    print_table(
        f"M7: snapshot/restore of a {N_USERS}-user deployment",
        ["metric", "value"],
        [["snapshot size (bytes)", len(blob)],
         ["accounts restored", len(restored.usernames())],
         ["grants restored",
          sum(len(restored.declass.grants_for(u))
              for u in restored.usernames())],
         ["unrestorable grants", len(report["unrestored_grants"])]])
