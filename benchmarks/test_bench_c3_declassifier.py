"""C3 — §3.1: a friends-only declassifier pokes exactly the right hole.

Over a synthetic social graph, every user requests every other user's
profile through the social app.  Deliveries must match the friendship
relation exactly: 100% of friend requests succeed, 0% of stranger
requests leak.  Parametrized over graph topologies (clustered,
scale-free) to show the result is structural, not an artifact of one
random graph.
"""

import pytest

from repro import W5System
from repro.workloads import (BARABASI_ALBERT, WATTS_STROGATZ,
                             make_social_world)

from .conftest import print_table

N_USERS = 10


def run_delivery_matrix(model=WATTS_STROGATZ):
    world = make_social_world(n_users=N_USERS, model=model, seed=21)
    w5 = W5System()
    w5.load_world(world, apps=("social", "blog"))
    results = {"friend_ok": 0, "friend_fail": 0,
               "stranger_ok": 0, "stranger_blocked": 0}
    for viewer in world.users:
        client = w5.client(viewer)
        for owner in world.users:
            if owner == viewer:
                continue
            marker = world.profiles[owner]["music"]
            r = client.get("/app/social/profile", user=owner)
            delivered = r.ok and r.body.get("profile", {}).get(
                "music") == marker
            if world.are_friends(viewer, owner):
                results["friend_ok" if delivered else "friend_fail"] += 1
            else:
                results["stranger_ok" if delivered
                        else "stranger_blocked"] += 1
    return results


@pytest.mark.parametrize("model", [WATTS_STROGATZ, BARABASI_ALBERT])
def test_bench_c3_declassifier_precision(benchmark, model):
    results = benchmark(run_delivery_matrix, model)

    assert results["friend_fail"] == 0
    assert results["stranger_ok"] == 0
    assert results["friend_ok"] > 0
    assert results["stranger_blocked"] > 0

    total_friend = results["friend_ok"] + results["friend_fail"]
    total_stranger = results["stranger_ok"] + results["stranger_blocked"]
    print_table(
        f"C3: friends-only declassifier delivery matrix ({model})",
        ["requester class", "requests", "delivered", "rate"],
        [["friends", total_friend, results["friend_ok"],
          f"{100 * results['friend_ok'] / total_friend:.0f}%"],
         ["strangers", total_stranger, results["stranger_ok"],
          f"{100 * results['stranger_ok'] / total_stranger:.0f}%"]])
