"""C7 — §3.4: lower barrier to entry → faster adoption.

The diffusion model with identical parameters except signup friction:
W5's checkbox vs re-uploading N items on the siloed Web.  Series:
adopters over time; table: time-to-critical-mass.  Labeled
illustrative — it shows the direction of the claimed market effect.
"""

from repro.ecosystem import compare_platforms, conversion_friction

from .conftest import print_table

POPULATION = 1000
STEPS = 80
ITEMS = 25


def run_adoption_comparison():
    return compare_platforms(population=POPULATION, steps=STEPS,
                             items_to_migrate=ITEMS, seed=17)


def test_bench_c7_adoption(benchmark):
    curves = benchmark(run_adoption_comparison)
    w5, silo = curves["w5"], curves["status-quo"]

    t10_w5, t50_w5 = w5.time_to_fraction(0.1), w5.time_to_fraction(0.5)
    t10_s, t50_s = silo.time_to_fraction(0.1), silo.time_to_fraction(0.5)

    assert t10_w5 is not None and t50_w5 is not None
    assert t10_s is None or t10_s > t10_w5
    assert t50_s is None or t50_s > t50_w5
    assert w5.final_share > silo.final_share

    def fmt(t):
        return t if t is not None else f">{STEPS}"

    print_table(
        f"C7: app adoption (population={POPULATION}, "
        f"{ITEMS} items to migrate on status quo)",
        ["platform", "signup friction", "t(10%)", "t(50%)",
         f"share @ step {STEPS}"],
        [["W5 (checkbox)", 1.0, fmt(t10_w5), fmt(t50_w5),
          f"{w5.final_share:.0%}"],
         ["status quo (re-upload)", conversion_friction(ITEMS),
          fmt(t10_s), fmt(t50_s), f"{silo.final_share:.0%}"]])

    # the series (downsampled) for the figure
    stride = max(1, STEPS // 8)
    print_table(
        "C7 series: adopters by step",
        ["step", "W5", "status quo"],
        [[i, w5.adopters_by_step[i], silo.adopters_by_step[i]]
         for i in range(0, STEPS, stride)])
