"""C8 — §4: the address-book/map mashup on four platforms.

The same scenario everywhere: bob maps his private address book using
a third-party map renderer.  The table counts which fields reached the
map company's servers and the mashup developer on each platform —
reproducing the paper's §4 comparison verbatim.
"""

from repro import W5System
from repro.baselines import (AddressBookService, ApiMashup,
                             DeveloperServer, MapProviderServer,
                             MashupOsMashup, ThirdPartyPlatform)

from .conftest import print_table

ENTRIES = [("mom", "12 Elm St"), ("dan", "9 Oak Ave"),
           ("kim", "3 Birch Rd")]


def run_mashup_matrix():
    rows = {}

    # status-quo browser mashup
    book = AddressBookService()
    maps = MapProviderServer()
    for name, addr in ENTRIES:
        book.add("bob", name, addr)
    ApiMashup(book, maps).render("bob")
    rows["status quo"] = (len(maps.received_names),
                          len(maps.received_addresses), "page works")

    # MashupOS
    book2, maps2 = AddressBookService(), MapProviderServer()
    for name, addr in ENTRIES:
        book2.add("bob", name, addr)
    MashupOsMashup(book2, maps2).render("bob")
    rows["MashupOS"] = (len(maps2.received_names),
                        len(maps2.received_addresses), "page works")

    # Facebook-style third-party app
    platform = ThirdPartyPlatform()
    dev_server = DeveloperServer("devMash", render=lambda p: "<map-page>")
    platform.register_app("address-map", dev_server)
    platform.signup("bob", {f"addr:{n}": a for n, a in ENTRIES})
    platform.install_app("bob", "address-map")
    platform.use_app("bob", "address-map")
    leaked_fields = sum(len(p) for p in dev_server.received)
    rows["third-party platform"] = (leaked_fields, leaked_fields,
                                    "page works")

    # W5: marker placement server-side, inside the perimeter
    w5 = W5System()
    bob = w5.add_user("bob", apps=["address-map"])
    for name, addr in ENTRIES:
        bob.get("/app/address-map/add", name=name, address=addr)
    r = bob.get("/app/address-map/map")
    page_ok = r.ok and r.body["markers"] == len(ENTRIES)
    # the map developer's channel is the app's return value to OTHERS:
    eve = w5.add_user("map-corp-employee")
    eve.get("/app/address-map/map")
    w5_names = sum(1 for n, a in ENTRIES if eve.ever_received(n))
    w5_addrs = sum(1 for n, a in ENTRIES if eve.ever_received(a))
    rows["W5"] = (w5_names, w5_addrs,
                  "page works" if page_ok else "broken")
    return rows


def test_bench_c8_mashup(benchmark):
    rows = benchmark(run_mashup_matrix)

    n = len(ENTRIES)
    assert rows["status quo"][:2] == (n, n)
    assert rows["MashupOS"][:2] == (0, n)    # the paper's exact point
    assert rows["third-party platform"][0] > 0
    assert rows["W5"][:2] == (0, 0)
    assert rows["W5"][2] == "page works"

    print_table(
        f"C8: mashup privacy ({n} address-book entries)",
        ["platform", "names leaked to map corp",
         "addresses leaked", "functionality"],
        [[name, *vals] for name, vals in rows.items()])
