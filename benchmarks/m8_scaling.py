"""M8 shared harness: per-request cost vs. deployment size.

Builds a W5 deployment with N signed-up users (every one of them has
enabled the blog app and granted the stock friends-only declassifier —
the state that makes the naive request plane O(N)), then measures the
per-request latency of a fully labeled read: authenticate → launch the
app with its commingled capabilities → labeled row read (taints the
process) → export-authority check at the gateway.

Used by both ``test_bench_m8_scaling.py`` (assertions + table) and
``record.py`` (BENCH_M8.json + the 3x regression guard), so the two
always measure the same thing.

Plain imports only: ``record.py`` runs as a script, so this module
must work without the package context.
"""

from __future__ import annotations

import time
from typing import Any

from repro import W5System
from repro.platform import ProviderConfig


def build_deployment(n_users: int, fast: bool,
                     tracing: bool = False) -> tuple[W5System, Any]:
    """A deployment with ``n_users`` accounts and one driving client.

    Accounts beyond the driver are created through the provider's
    form methods directly (not HTTP) so setup stays proportional to N
    while the *measured* path is the full pipeline.  ``tracing`` turns
    on the M11 span tracer (the M11 overhead bench reuses this exact
    deployment and request mix).
    """
    w5 = W5System(name=f"m8-{'fast' if fast else 'slow'}-{n_users}",
                  config=ProviderConfig(fast_request_plane=fast,
                                        recycle_processes=fast),
                  audit_max_events=20_000, tracing=tracing)
    driver = w5.add_user("user0", apps=("blog",))
    provider = w5.provider
    for i in range(1, n_users):
        name = f"user{i}"
        provider.signup(name, "pw")
        provider.enable_app(name, "blog")
        provider.grant_builtin_declassifier(
            name, "friends-only", {"friends": []})
    driver.get("/app/blog/post", title="t0", body="hello world")
    resp = driver.get("/app/blog/read", title="t0")
    assert resp.ok and resp.body["body"] == "hello world"
    return w5, driver


def measure_request_seconds(driver, n: int = 60, repeat: int = 3) -> float:
    """Mean seconds per labeled read (best of ``repeat`` loops)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(n):
            driver.get("/app/blog/read", title="t0")
        best = min(best, time.perf_counter() - t0)
    return best / n


def run_tier(n_users: int, fast: bool, n: int = 60,
             repeat: int = 3) -> dict[str, Any]:
    """One (size, mode) measurement with cache observability."""
    w5, driver = build_deployment(n_users, fast=fast)
    seconds = measure_request_seconds(driver, n=n, repeat=repeat)
    provider = w5.provider
    return {
        "users": n_users,
        "fast_request_plane": fast,
        "latency_us": round(seconds * 1e6, 2),
        "throughput_rps": round(1.0 / seconds, 1),
        "launch_caps": provider.capindex.stats(),
        "authority": provider.declass.authority_stats(),
        "pool": provider.kernel.pool.stats(),
        "audit_dropped": provider.kernel.audit.dropped,
    }
