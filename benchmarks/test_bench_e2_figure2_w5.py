"""E2 — Figure 2: the same users and applications on W5.

One platform, one copy of each user's data, every enabled application
computing over it; enabling a new app is one click and zero re-entry;
the boilerplate export policy still holds.
"""

from repro import W5System
from repro.workloads import make_social_world

from .conftest import print_table

N_USERS = 10


def build_w5_world():
    world = make_social_world(n_users=N_USERS, photos_per_user=3,
                              posts_per_user=2, seed=7)
    w5 = W5System()
    w5.load_world(world)
    return world, w5


def test_bench_e2_w5_world(benchmark):
    world, w5 = benchmark(build_w5_world)
    user = world.users[0]
    client = w5.client(user)

    # one copy of the data, visible to every enabled app
    photos = client.get("/app/photo-share/list").body["photos"]
    titles = client.get("/app/blog/list").body["titles"]
    assert len(photos) == 3 and len(titles) == 2

    # adopting a NEW app over existing data: one checkbox per user,
    # zero re-entry anywhere (each click is that user's consent for
    # the app to read their data — the recommender skips holdouts)
    before = len(w5.provider.adoptions)
    for u in world.users:
        w5.client(u).post("/policy/enable", params={"app": "recommender"})
    digest = client.get("/app/recommender/digest", k=5)
    assert digest.ok
    adoption_clicks = (len(w5.provider.adoptions) - before) / N_USERS

    # export policy still holds for strangers
    strangers = [u for u in world.users
                 if u != user and not world.are_friends(user, u)]
    secret = world.photos[user][0]["bytes"]
    leaked = 0
    for s in strangers:
        w5.client(s).get("/app/photo-share/view", owner=user,
                         filename=world.photos[user][0]["filename"])
        if w5.client(s).ever_received(secret):
            leaked += 1
    assert leaked == 0
    assert adoption_clicks == 1

    print_table(
        "E2 / Figure 2: W5",
        ["metric", "value"],
        [["users", N_USERS],
         ["profile copies per user", 1],
         ["re-entered fields to adopt new app", 0],
         ["clicks per user to adopt new app", adoption_clicks],
         ["apps computing over shared data", 4],
         ["stranger leaks", leaked]])
