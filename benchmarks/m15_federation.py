"""M15 shared harness: delta federation sync vs. the naive reconciler.

Two questions, matching the ROADMAP item-2 claims:

1. **Sync cost is O(dirty), not O(corpus).**  A linked pair holds
   ``n_files`` in the user's home; each round dirties a fixed small
   set and syncs.  The naive content reconciler re-reads every file on
   both sides and re-selects every row, so its round cost grows with
   the corpus; the journal-cursor delta engine tails the journal and
   touches only the dirty set, so its round cost is ~flat.  The guard
   tier (1,000 files / 1% dirty) must show ≥5× — measured far higher
   on the reference box, the floor just catches the optimization
   silently dying.

2. **The fabric routes in O(1) as providers multiply.**  A
   ``FederationFabric`` of N ∈ {2, 16, 64, 256} providers serves
   cross-provider reads routed through the consistent-hash directory;
   per-read latency must stay flat as N grows (placement is a ring
   lookup, not a scan).

Measurement uses min-of-reps floors (the M8/M11 convention): each rep
re-dirties the same file set and times one ``sync_user`` round, and
the floor is the repeatable cost of that round with cache/allocator
luck stripped.

Used by both ``test_bench_m15_federation.py`` (assertions + tables)
and ``record.py`` (BENCH_M15.json + the ≥5× regression guard), so the
two always measure the same thing.

Plain imports only: ``record.py`` runs this as a script, outside the
package context.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Optional

from repro.federation import FederationConfig, FederationFabric, ProviderLink
from repro.fs import FsView
from repro.platform import Provider, ProviderConfig

#: The CI bar for the guard tier (1,000 files, 1% dirty): delta sync
#: must beat the naive reconciler by at least this factor.  Measured
#: ~two orders of magnitude on the reference box; 5× is the floor at
#: which the delta path has clearly stopped being a delta path.
M15_MIN_SPEEDUP = 5.0
#: Corpus sizes for the flatness curve (dirty set fixed at 10 files).
M15_TIERS = (250, 1000, 4000)
#: Provider counts for the fabric routing curve.
M15_FLEETS = (2, 16, 64, 256)

#: Journals big enough that a benchmark round never triggers
#: compaction mid-measurement (compaction = checkpoint = cursor reset,
#: which would charge one full recon to a random rep).
_BENCH_CONFIG = ProviderConfig(journal_compact_bytes=1 << 28)


def build_pair(n_files: int, delta: bool
               ) -> tuple[Provider, Provider, ProviderLink]:
    """A linked, granted, primed pair with ``n_files`` already
    mirrored — the steady state both engines start a round from."""
    a = Provider(name="m15-a", config=_BENCH_CONFIG)
    b = Provider(name="m15-b", config=_BENCH_CONFIG)
    for p in (a, b):
        p.signup("bob", "pw")
    config = FederationConfig.delta() if delta else FederationConfig.naive()
    link = ProviderLink(a, b, config=config)
    link.link_account("bob")
    link.grant_sync("bob")
    agent = a._user_agent(a.account("bob"))
    fs = FsView(a.fs, agent)
    for i in range(n_files):
        fs.create(f"/users/bob/f{i}", f"v0-{i}")
    a.kernel.exit(agent)
    link.sync_user("bob")  # prime: mirror everything, attach cursors
    return a, b, link


def dirty_files(provider: Provider, n_dirty: int, stamp: str) -> None:
    """Rewrite the first ``n_dirty`` files with fresh content."""
    agent = provider._user_agent(provider.account("bob"))
    fs = FsView(provider.fs, agent)
    for i in range(n_dirty):
        fs.write(f"/users/bob/f{i}", f"{stamp}-{i}")
    provider.kernel.exit(agent)


def measure_sync_seconds(n_files: int, n_dirty: int, delta: bool,
                         reps: int = 5) -> dict[str, Any]:
    """Floor cost of one sync round at a fixed dirty set."""
    a, __, link = build_pair(n_files, delta)
    times = []
    for rep in range(reps):
        dirty_files(a, n_dirty, f"r{rep}")
        t0 = perf_counter()
        moved = link.sync_user("bob")
        times.append(perf_counter() - t0)
        assert moved == n_dirty, (moved, n_dirty)
    assert link.sync_user("bob") == 0  # converged
    return {
        "n_files": n_files,
        "n_dirty": n_dirty,
        "engine": "delta" if delta else "naive",
        "floor_ms": round(min(times) * 1e3, 3),
        "mean_ms": round(sum(times) / len(times) * 1e3, 3),
    }


def run_sync_scaling(tiers=M15_TIERS, n_dirty: int = 10,
                     reps: int = 5) -> dict[str, Any]:
    """The headline table: both engines across corpus sizes at a
    fixed dirty set, plus the guard-tier speedup."""
    rows = []
    for n_files in tiers:
        for delta in (False, True):
            rows.append(measure_sync_seconds(n_files, n_dirty, delta,
                                             reps=reps))
    by = {(r["n_files"], r["engine"]): r for r in rows}
    guard_tier = 1000 if 1000 in tiers else tiers[-1]
    speedup = (by[(guard_tier, "naive")]["floor_ms"]
               / max(by[(guard_tier, "delta")]["floor_ms"], 1e-9))
    delta_floors = [by[(t, "delta")]["floor_ms"] for t in tiers]
    naive_floors = [by[(t, "naive")]["floor_ms"] for t in tiers]
    return {
        "tiers": list(tiers),
        "n_dirty": n_dirty,
        "rows": rows,
        "guard_tier": guard_tier,
        "speedup": round(speedup, 2),
        "min_speedup": M15_MIN_SPEEDUP,
        "delta_flatness": round(max(delta_floors) / max(min(delta_floors),
                                                        1e-9), 2),
        "naive_growth": round(max(naive_floors) / max(min(naive_floors),
                                                      1e-9), 2),
        "regression": speedup < M15_MIN_SPEEDUP,
    }


def measure_fabric_latency(n_providers: int, n_users: int = 24,
                           n_reads: int = 200) -> dict[str, Any]:
    """Routed-read latency through a fabric of ``n_providers``."""
    t0 = perf_counter()
    fabric = FederationFabric(n_providers, provider_config=_BENCH_CONFIG)
    build_s = perf_counter() - t0
    users = [f"user{i}" for i in range(n_users)]
    for user in users:
        fabric.signup(user, "pw")
        fabric.store_user_data(user, "profile", f"profile-of-{user}")
    # warmup + measurement: round-robin cross-provider reads
    for user in users:
        assert fabric.read_user_data(
            user, "profile") == f"profile-of-{user}"
    t0 = perf_counter()
    for i in range(n_reads):
        fabric.read_user_data(users[i % n_users], "profile")
    total = perf_counter() - t0
    homes = {fabric.home_of(u) for u in users}
    return {
        "providers": n_providers,
        "distinct_homes": len(homes),
        "build_s": round(build_s, 3),
        "read_latency_us": round(total / n_reads * 1e6, 2),
    }


def run_latency_curve(fleets=M15_FLEETS) -> list[dict[str, Any]]:
    return [measure_fabric_latency(n) for n in fleets]
